//! Statistics substrate for the Fixy / Learned Observation Assertions
//! reproduction.
//!
//! Section 5 of the paper: *"Fixy takes a function that accepts a list of
//! scalars/vectors and returns a fitted distribution. By default, Fixy uses
//! a kernel density estimator (KDE) to learn feature distributions over the
//! features."* This crate provides that fitting machinery:
//!
//! * [`Kde1d`] — Gaussian/Epanechnikov/Tophat kernel density estimation with
//!   Scott/Silverman bandwidth selection (the "default hyperparameters" the
//!   paper says work in all cases they tried),
//! * [`BinnedKde`] — a grid-accelerated KDE for large training sets,
//! * [`Histogram`] — Freedman–Diaconis / Sturges histogram densities,
//! * [`Gaussian`], [`Bernoulli`], [`Categorical`] — parametric alternatives
//!   users can substitute for the default KDE,
//! * [`KdeNd`] — diagonal-bandwidth multivariate KDE for vector features,
//! * [`summary`] — Welford accumulators and quantiles.
//!
//! Every distribution implements [`Density1d`], whose
//! [`relative_likelihood`](Density1d::relative_likelihood) maps a feature
//! value to `(0, 1]` by normalizing the density by the fitted maximum — the
//! probability-like quantity the LOA scoring semantics (Section 6) take the
//! log of.

pub mod bandwidth;
pub mod discrete;
pub mod ecdf;
pub mod exponential;
pub mod gaussian;
pub mod histogram;
pub mod kde;
pub mod kde_nd;
pub mod kernel;
pub mod summary;

pub use bandwidth::{Bandwidth, BandwidthRule};
pub use discrete::{Bernoulli, Categorical};
pub use ecdf::EmpiricalCdf;
pub use exponential::Exponential;
pub use gaussian::Gaussian;
pub use histogram::Histogram;
pub use kde::{BinnedKde, Kde1d};
pub use kde_nd::KdeNd;
pub use kernel::Kernel;

use serde::{Deserialize, Serialize};

/// Smallest relative likelihood a fitted distribution reports for finite
/// inputs. Keeps `ln(p)` finite; AOF zeroing is the only source of true
/// zeros in LOA scoring.
pub const P_FLOOR: f64 = 1e-9;

/// Errors from fitting a distribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitError {
    /// The training sample was empty.
    EmptySample,
    /// The training sample contained NaN or infinite values.
    NonFiniteSample,
    /// A dimension mismatch in multivariate fitting.
    DimensionMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::EmptySample => write!(f, "cannot fit a distribution to an empty sample"),
            FitError::NonFiniteSample => {
                write!(f, "training sample contains NaN or infinite values")
            }
            FitError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted one-dimensional density.
///
/// The LOA scoring semantics need a probability-like value in `(0, 1]` per
/// feature evaluation; [`relative_likelihood`](Self::relative_likelihood)
/// provides it as `density(x) / max_density`, floored at [`P_FLOOR`].
pub trait Density1d {
    /// Probability density at `x` (non-negative; integrates to ~1).
    fn density(&self, x: f64) -> f64;

    /// The maximum density value attained by the fitted distribution
    /// (estimated at fit time).
    fn max_density(&self) -> f64;

    /// Relative likelihood in `[P_FLOOR, 1]`: density normalized by the
    /// fitted mode. Non-finite inputs map to the floor.
    fn relative_likelihood(&self, x: f64) -> f64 {
        if !x.is_finite() || self.max_density() <= 0.0 {
            return P_FLOOR;
        }
        (self.density(x) / self.max_density()).clamp(P_FLOOR, 1.0)
    }
}

/// Validate that a training sample is non-empty and finite.
pub(crate) fn validate_sample(samples: &[f64]) -> Result<(), FitError> {
    if samples.is_empty() {
        return Err(FitError::EmptySample);
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(FitError::NonFiniteSample);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat;
    impl Density1d for Flat {
        fn density(&self, x: f64) -> f64 {
            if (0.0..=1.0).contains(&x) {
                1.0
            } else {
                0.0
            }
        }
        fn max_density(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn relative_likelihood_default_impl() {
        let d = Flat;
        assert_eq!(d.relative_likelihood(0.5), 1.0);
        assert_eq!(d.relative_likelihood(2.0), P_FLOOR);
        assert_eq!(d.relative_likelihood(f64::NAN), P_FLOOR);
        assert_eq!(d.relative_likelihood(f64::INFINITY), P_FLOOR);
    }

    #[test]
    fn fit_error_display() {
        assert!(FitError::EmptySample.to_string().contains("empty"));
        assert!(FitError::NonFiniteSample.to_string().contains("NaN"));
        assert!(FitError::DimensionMismatch { expected: 2, got: 3 }
            .to_string()
            .contains("expected 2"));
    }

    #[test]
    fn validate_sample_gates() {
        assert_eq!(validate_sample(&[]), Err(FitError::EmptySample));
        assert_eq!(validate_sample(&[1.0, f64::NAN]), Err(FitError::NonFiniteSample));
        assert_eq!(validate_sample(&[1.0, 2.0]), Ok(()));
    }
}
