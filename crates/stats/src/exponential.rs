//! Exponential distribution — a parametric alternative for non-negative,
//! decaying features (e.g. time-gap between observations, distance-based
//! severity priors like the Table 2 Distance feature).

use crate::summary::Welford;
use crate::{validate_sample, Density1d, FitError};
use serde::{Deserialize, Serialize};

/// A fitted exponential distribution `p(x) = λ e^{−λx}` on `x ≥ 0`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Maximum-likelihood fit: `λ = 1 / mean`. Samples must be
    /// non-negative; a degenerate all-zero sample gets a large rate.
    pub fn fit(samples: &[f64]) -> Result<Self, FitError> {
        validate_sample(samples)?;
        if samples.iter().any(|&x| x < 0.0) {
            return Err(FitError::NonFiniteSample);
        }
        let mean = Welford::from_slice(samples).mean();
        let rate = if mean > 0.0 { 1.0 / mean } else { 1e6 };
        Ok(Exponential { rate })
    }

    /// Construct from a rate parameter (positive, finite).
    pub fn from_rate(rate: f64) -> Result<Self, FitError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(FitError::NonFiniteSample);
        }
        Ok(Exponential { rate })
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }

    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Survival function `P(X > x)`.
    pub fn survival(&self, x: f64) -> f64 {
        if !x.is_finite() || x < 0.0 {
            return 1.0;
        }
        (-self.rate * x).exp()
    }
}

impl Density1d for Exponential {
    fn density(&self, x: f64) -> f64 {
        if !x.is_finite() || x < 0.0 {
            return 0.0;
        }
        self.rate * (-self.rate * x).exp()
    }

    fn max_density(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_recovers_rate() {
        // Deterministic sample with mean 4 → rate 0.25.
        let xs: Vec<f64> = (0..1000).map(|i| (i % 9) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let e = Exponential::fit(&xs).unwrap();
        assert!((e.rate() - 1.0 / mean).abs() < 1e-12);
        assert!((e.mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn density_closed_form() {
        let e = Exponential::from_rate(2.0).unwrap();
        assert!((e.density(0.0) - 2.0).abs() < 1e-12);
        assert!((e.density(1.0) - 2.0 * (-2.0f64).exp()).abs() < 1e-12);
        assert_eq!(e.density(-1.0), 0.0);
        assert_eq!(e.max_density(), 2.0);
        assert!((e.relative_likelihood(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn survival_function() {
        let e = Exponential::from_rate(1.0).unwrap();
        assert!((e.survival(0.0) - 1.0).abs() < 1e-12);
        assert!((e.survival(1.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(e.survival(-5.0), 1.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Exponential::fit(&[]).is_err());
        assert!(Exponential::fit(&[1.0, -2.0]).is_err());
        assert!(Exponential::fit(&[f64::NAN]).is_err());
        assert!(Exponential::from_rate(0.0).is_err());
        assert!(Exponential::from_rate(f64::INFINITY).is_err());
    }

    #[test]
    fn degenerate_zero_sample() {
        let e = Exponential::fit(&[0.0; 5]).unwrap();
        assert!(e.rate() > 1e5);
    }

    proptest! {
        #[test]
        fn prop_density_monotone_decreasing(rate in 0.01f64..10.0) {
            let e = Exponential::from_rate(rate).unwrap();
            let mut prev = e.density(0.0);
            for i in 1..20 {
                let cur = e.density(i as f64 * 0.3);
                prop_assert!(cur <= prev + 1e-15);
                prev = cur;
            }
        }

        #[test]
        fn prop_survival_in_unit_interval(rate in 0.01f64..10.0, x in 0.0f64..100.0) {
            let e = Exponential::from_rate(rate).unwrap();
            let s = e.survival(x);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
