//! Empirical CDF — used by the evaluation harness for tail probabilities
//! (e.g. "how extreme is this track's score among the training scores")
//! and available to users as a non-parametric severity transform.

use crate::{validate_sample, FitError};
use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over a finite sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Build from a sample (non-empty, finite values).
    pub fn fit(samples: &[f64]) -> Result<Self, FitError> {
        validate_sample(samples)?;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        Ok(EmpiricalCdf { sorted })
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)` under the empirical distribution. NaN input maps to 0.
    pub fn cdf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)` — the upper-tail probability.
    pub fn tail(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Two-sided extremeness: `2·min(cdf, tail)`, in `[0, 1]`; values near
    /// 0 are extreme in either direction. A non-parametric alternative to
    /// the KDE relative likelihood.
    pub fn centrality(&self, x: f64) -> f64 {
        (2.0 * self.cdf(x).min(self.tail(x))).clamp(0.0, 1.0)
    }

    /// The value at a given quantile (type-7 interpolation).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::summary::quantile(&self.sorted, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cdf_on_known_sample() {
        let e = EmpiricalCdf::fit(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.0), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
        assert_eq!(e.tail(2.5), 0.5);
    }

    #[test]
    fn centrality_extremes() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let e = EmpiricalCdf::fit(&xs).unwrap();
        assert!(e.centrality(50.0) > 0.9);
        assert!(e.centrality(-10.0) < 1e-12);
        assert!(e.centrality(1000.0) < 1e-12);
    }

    #[test]
    fn quantile_passthrough() {
        let e = EmpiricalCdf::fit(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        assert_eq!(e.quantile(0.5), Some(2.5));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(EmpiricalCdf::fit(&[]).is_err());
        assert!(EmpiricalCdf::fit(&[f64::NAN]).is_err());
        let e = EmpiricalCdf::fit(&[1.0]).unwrap();
        assert_eq!(e.cdf(f64::NAN), 0.0);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(
            xs in proptest::collection::vec(-100.0f64..100.0, 1..60),
            q1 in -150.0f64..150.0,
            q2 in -150.0f64..150.0,
        ) {
            let e = EmpiricalCdf::fit(&xs).unwrap();
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(e.cdf(lo) <= e.cdf(hi) + 1e-12);
            prop_assert!((0.0..=1.0).contains(&e.cdf(q1)));
            prop_assert!((0.0..=1.0).contains(&e.centrality(q1)));
        }

        #[test]
        fn prop_cdf_reaches_bounds(
            xs in proptest::collection::vec(-100.0f64..100.0, 1..60),
        ) {
            // Below every sample the CDF is exactly 0; at and above the
            // maximum it is exactly 1; tail is its complement.
            let e = EmpiricalCdf::fit(&xs).unwrap();
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(e.cdf(min - 1.0), 0.0);
            prop_assert_eq!(e.cdf(max), 1.0);
            prop_assert_eq!(e.cdf(max + 1.0), 1.0);
            prop_assert!((e.tail(max) - 0.0).abs() < 1e-12);
            prop_assert!((e.cdf(min) - e.cdf(min - 1.0) - 1.0 / xs.len() as f64).abs() < 1e-12
                || xs.iter().filter(|&&x| x == min).count() > 1);
        }
    }
}
