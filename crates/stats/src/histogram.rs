//! Histogram densities with automatic binning.
//!
//! A histogram is the coarsest density estimator Fixy offers; it is mainly
//! useful as an ablation against KDE and for integer-valued features (e.g.,
//! the track-length Count feature) where kernel smoothing is unnatural.

use crate::summary::iqr;
use crate::{validate_sample, Density1d, FitError};
use serde::{Deserialize, Serialize};

/// How to choose the number of histogram bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BinningRule {
    /// Freedman–Diaconis: bin width `2·IQR·n^(−1/3)` (robust default).
    #[default]
    FreedmanDiaconis,
    /// Sturges: `⌈log2 n⌉ + 1` bins.
    Sturges,
    /// Fixed bin count (≥ 1).
    Fixed(usize),
}

/// A fitted histogram density with uniform bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    start: f64,
    bin_width: f64,
    /// Per-bin densities (counts normalized by `n · bin_width`).
    densities: Vec<f64>,
    max_density: f64,
    n: usize,
}

impl Histogram {
    /// Fit with the default binning rule.
    pub fn fit(samples: &[f64]) -> Result<Self, FitError> {
        Self::fit_with(samples, BinningRule::default())
    }

    /// Fit with an explicit binning rule.
    pub fn fit_with(samples: &[f64], rule: BinningRule) -> Result<Self, FitError> {
        validate_sample(samples)?;
        let n = samples.len();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(0.0);

        let bins = match rule {
            BinningRule::Fixed(b) => b.max(1),
            BinningRule::Sturges => (n as f64).log2().ceil() as usize + 1,
            BinningRule::FreedmanDiaconis => {
                let width = 2.0 * iqr(samples) * (n as f64).powf(-1.0 / 3.0);
                if width > 0.0 && span > 0.0 {
                    ((span / width).ceil() as usize).clamp(1, 10_000)
                } else {
                    1
                }
            }
        };

        // A degenerate span (all samples equal) gets one narrow bin.
        let bin_width = if span > 0.0 { span / bins as f64 } else { 1e-3 };
        let start = if span > 0.0 { min } else { min - bin_width / 2.0 };

        let mut counts = vec![0usize; bins];
        for &x in samples {
            let idx = (((x - start) / bin_width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let norm = 1.0 / (n as f64 * bin_width);
        let densities: Vec<f64> = counts.iter().map(|&c| c as f64 * norm).collect();
        let max_density = densities.iter().copied().fold(0.0f64, f64::max);
        Ok(Histogram { start, bin_width, densities, max_density, n })
    }

    pub fn bins(&self) -> usize {
        self.densities.len()
    }

    pub fn sample_count(&self) -> usize {
        self.n
    }

    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Left edge of the first bin.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Per-bin densities (counts normalized by `n · bin_width`).
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }

    /// Reassemble a fitted histogram from its serialized parts — the
    /// binary codec's bulk-copy load path. Callers are responsible for
    /// validating untrusted input (≥ 1 bin, finite, positive width).
    pub fn from_raw_parts(
        start: f64,
        bin_width: f64,
        densities: Vec<f64>,
        max_density: f64,
        n: usize,
    ) -> Self {
        debug_assert!(!densities.is_empty(), "a histogram needs at least one bin");
        debug_assert!(bin_width > 0.0);
        debug_assert!(n > 0);
        Histogram { start, bin_width, densities, max_density, n }
    }
}

impl Density1d for Histogram {
    fn density(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        let end = self.start + self.bin_width * self.densities.len() as f64;
        if x < self.start || x > end {
            return 0.0;
        }
        let idx = (((x - self.start) / self.bin_width) as usize).min(self.densities.len() - 1);
        self.densities[idx]
    }

    fn max_density(&self) -> f64 {
        self.max_density
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_sample_flat_histogram() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect(); // [0, 10)
        let h = Histogram::fit_with(&xs, BinningRule::Fixed(10)).unwrap();
        assert_eq!(h.bins(), 10);
        // Uniform density over [0, ~10] should be ≈ 0.1 everywhere.
        for x in [0.5, 3.5, 7.5, 9.5] {
            assert!((h.density(x) - 0.1).abs() < 0.02, "density({x}) = {}", h.density(x));
        }
    }

    #[test]
    fn density_integrates_to_one() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 100) as f64 * 0.1).collect();
        let h = Histogram::fit(&xs).unwrap();
        let total: f64 = h.densities.iter().map(|d| d * h.bin_width).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_density_is_zero() {
        let h = Histogram::fit(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(h.density(-100.0), 0.0);
        assert_eq!(h.density(100.0), 0.0);
        assert_eq!(h.density(f64::NAN), 0.0);
    }

    #[test]
    fn constant_sample_single_spike() {
        let h = Histogram::fit(&[5.0; 20]).unwrap();
        assert!(h.relative_likelihood(5.0) > 0.99);
        assert!(h.relative_likelihood(6.0) < 1e-6);
    }

    #[test]
    fn sturges_bin_count() {
        let xs: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let h = Histogram::fit_with(&xs, BinningRule::Sturges).unwrap();
        assert_eq!(h.bins(), 8); // log2(128) = 7, + 1
    }

    #[test]
    fn rejects_invalid_samples() {
        assert!(matches!(Histogram::fit(&[]), Err(FitError::EmptySample)));
        assert!(matches!(
            Histogram::fit(&[1.0, f64::INFINITY]),
            Err(FitError::NonFiniteSample)
        ));
    }

    proptest! {
        #[test]
        fn prop_density_nonnegative_and_bounded(
            xs in proptest::collection::vec(-100.0f64..100.0, 1..100),
            q in -200.0f64..200.0,
        ) {
            let h = Histogram::fit(&xs).unwrap();
            prop_assert!(h.density(q) >= 0.0);
            prop_assert!(h.density(q) <= h.max_density() + 1e-12);
        }

        #[test]
        fn prop_mass_conservation(
            xs in proptest::collection::vec(-50.0f64..50.0, 2..200),
        ) {
            let h = Histogram::fit(&xs).unwrap();
            let total: f64 = h.densities.iter().map(|d| d * h.bin_width).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }

        #[test]
        fn prop_bin_counts_sum_to_sample_count(
            xs in proptest::collection::vec(-50.0f64..50.0, 1..200),
        ) {
            // Densities are counts normalized by n·width: recovering the
            // integer counts must partition the sample exactly.
            let h = Histogram::fit(&xs).unwrap();
            let counts: usize = h
                .densities
                .iter()
                .map(|d| (d * h.n as f64 * h.bin_width).round() as usize)
                .sum();
            prop_assert_eq!(counts, h.sample_count());
            prop_assert_eq!(h.sample_count(), xs.len());
        }
    }
}
