//! Bandwidth selection for kernel density estimation.
//!
//! The paper (Section 5.2) notes that *"density estimators have
//! hyperparameters \[but\] default hyperparameters work in all cases we
//! tried"*. Our default is Silverman's rule of thumb — robust to mild
//! multimodality via the IQR term — with Scott's rule and fixed bandwidths
//! available for the ablation benchmarks.

use crate::summary::{iqr, Welford};
use serde::{Deserialize, Serialize};

/// How to choose the KDE bandwidth from a training sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum BandwidthRule {
    /// Silverman's rule of thumb:
    /// `h = 0.9 · min(σ̂, IQR/1.34) · n^(−1/5)`.
    #[default]
    Silverman,
    /// Scott's rule: `h = 1.06 · σ̂ · n^(−1/5)`.
    Scott,
    /// A user-fixed bandwidth (must be positive).
    Fixed(f64),
}

/// A resolved bandwidth (positive, finite).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Wrap an already-resolved bandwidth value. Non-finite or
    /// non-positive values fall back to a unit bandwidth so the result
    /// is always usable as a divisor.
    #[inline]
    pub fn new(value: f64) -> Self {
        if value.is_finite() && value > 0.0 {
            Bandwidth(value)
        } else {
            Bandwidth(1.0)
        }
    }

    /// The numeric bandwidth value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl BandwidthRule {
    /// Resolve the rule against a (validated, non-empty, finite) sample.
    ///
    /// Degenerate samples (all values identical → σ̂ = IQR = 0) get a small
    /// positive bandwidth proportional to the magnitude of the data, so the
    /// resulting KDE is a narrow spike rather than a division by zero.
    pub fn resolve(self, samples: &[f64]) -> Bandwidth {
        let h = match self {
            BandwidthRule::Fixed(h) => h,
            BandwidthRule::Scott => {
                let w = Welford::from_slice(samples);
                1.06 * w.std_dev() * (samples.len() as f64).powf(-0.2)
            }
            BandwidthRule::Silverman => {
                let w = Welford::from_slice(samples);
                let sigma = w.std_dev();
                let iqr_scaled = iqr(samples) / 1.34;
                let spread = if iqr_scaled > 0.0 { sigma.min(iqr_scaled) } else { sigma };
                0.9 * spread * (samples.len() as f64).powf(-0.2)
            }
        };
        if h.is_finite() && h > 0.0 {
            Bandwidth(h)
        } else {
            // Degenerate sample: all points equal (or a bad Fixed value).
            // Scale a floor bandwidth to the data's magnitude.
            let scale = samples.iter().fold(0.0f64, |acc, x| acc.max(x.abs())).max(1.0);
            Bandwidth(1e-3 * scale)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_rule_passes_through() {
        let h = BandwidthRule::Fixed(0.25).resolve(&[1.0, 2.0, 3.0]);
        assert_eq!(h.value(), 0.25);
    }

    #[test]
    fn fixed_rule_rejects_nonpositive() {
        let h = BandwidthRule::Fixed(-1.0).resolve(&[1.0, 2.0, 3.0]);
        assert!(h.value() > 0.0);
    }

    #[test]
    fn scott_matches_formula() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let w = Welford::from_slice(&xs);
        let expected = 1.06 * w.std_dev() * 100f64.powf(-0.2);
        let h = BandwidthRule::Scott.resolve(&xs);
        assert!((h.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn silverman_uses_min_of_sigma_and_iqr() {
        // Heavy-tailed sample: IQR/1.34 < σ, so Silverman < Scott-style σ bw.
        let mut xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        xs.push(1e3); // outlier inflates σ but not IQR
        let h_silverman = BandwidthRule::Silverman.resolve(&xs);
        let w = Welford::from_slice(&xs);
        let sigma_based = 0.9 * w.std_dev() * (xs.len() as f64).powf(-0.2);
        assert!(h_silverman.value() < sigma_based);
    }

    #[test]
    fn degenerate_constant_sample_gets_positive_bandwidth() {
        for rule in [BandwidthRule::Silverman, BandwidthRule::Scott] {
            let h = rule.resolve(&[5.0; 10]);
            assert!(h.value() > 0.0, "{:?}", rule);
            assert!(h.value().is_finite());
        }
    }

    #[test]
    fn bandwidth_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..20).map(|i| (i as f64 * 37.0) % 10.0).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i as f64 * 37.0) % 10.0).collect();
        let hs = BandwidthRule::Silverman.resolve(&small);
        let hl = BandwidthRule::Silverman.resolve(&large);
        assert!(hl.value() < hs.value());
    }

    proptest! {
        #[test]
        fn prop_resolved_bandwidth_positive(
            xs in proptest::collection::vec(-1e4f64..1e4, 1..200),
        ) {
            for rule in [BandwidthRule::Silverman, BandwidthRule::Scott] {
                let h = rule.resolve(&xs);
                prop_assert!(h.value() > 0.0);
                prop_assert!(h.value().is_finite());
            }
        }
    }
}
