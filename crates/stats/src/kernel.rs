//! Smoothing kernels for kernel density estimation.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A smoothing kernel: a symmetric probability density `K(u)` on ℝ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Kernel {
    /// Standard normal density. Infinite support; the classical default.
    #[default]
    Gaussian,
    /// `3/4 (1 - u²)` on `[-1, 1]` — mean-square-error optimal, compact
    /// support (fast: far samples contribute exactly zero).
    Epanechnikov,
    /// Uniform on `[-1, 1]` (a.k.a. boxcar). Mostly useful in tests because
    /// densities become piecewise-constant and exactly checkable.
    Tophat,
}

impl Kernel {
    /// Kernel density at `u` (already scaled by bandwidth by the caller).
    #[inline]
    pub fn eval(self, u: f64) -> f64 {
        match self {
            Kernel::Gaussian => (-0.5 * u * u).exp() / (2.0 * PI).sqrt(),
            Kernel::Epanechnikov => {
                if u.abs() <= 1.0 {
                    0.75 * (1.0 - u * u)
                } else {
                    0.0
                }
            }
            Kernel::Tophat => {
                if u.abs() <= 1.0 {
                    0.5
                } else {
                    0.0
                }
            }
        }
    }

    /// Radius beyond which the kernel is (numerically) zero, in bandwidth
    /// units. Used to truncate sums.
    #[inline]
    pub fn support_radius(self) -> f64 {
        match self {
            // exp(-0.5 * 8.5²) ≈ 2e-16: below f64 epsilon relative to peak.
            Kernel::Gaussian => 8.5,
            Kernel::Epanechnikov | Kernel::Tophat => 1.0,
        }
    }

    /// Peak value `K(0)`.
    #[inline]
    pub fn peak(self) -> f64 {
        match self {
            Kernel::Gaussian => 1.0 / (2.0 * PI).sqrt(),
            Kernel::Epanechnikov => 0.75,
            Kernel::Tophat => 0.5,
        }
    }

    /// Stable one-byte wire tag (the `.flcb` binary library format).
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            Kernel::Gaussian => 0,
            Kernel::Epanechnikov => 1,
            Kernel::Tophat => 2,
        }
    }

    /// Inverse of [`tag`](Self::tag); `None` for unknown wire bytes.
    #[inline]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Kernel::Gaussian),
            1 => Some(Kernel::Epanechnikov),
            2 => Some(Kernel::Tophat),
            _ => None,
        }
    }

    /// Human-readable name (used in ablation tables).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Gaussian => "gaussian",
            Kernel::Epanechnikov => "epanechnikov",
            Kernel::Tophat => "tophat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KERNELS: [Kernel; 3] = [Kernel::Gaussian, Kernel::Epanechnikov, Kernel::Tophat];

    #[test]
    fn peak_matches_eval_at_zero() {
        for k in KERNELS {
            assert!((k.eval(0.0) - k.peak()).abs() < 1e-12, "{:?}", k);
        }
    }

    #[test]
    fn kernels_are_symmetric() {
        for k in KERNELS {
            for u in [0.1, 0.5, 0.9, 1.5, 3.0] {
                assert!((k.eval(u) - k.eval(-u)).abs() < 1e-12, "{:?} at {}", k, u);
            }
        }
    }

    #[test]
    fn compact_kernels_vanish_outside_support() {
        assert_eq!(Kernel::Epanechnikov.eval(1.01), 0.0);
        assert_eq!(Kernel::Tophat.eval(-1.01), 0.0);
    }

    #[test]
    fn kernels_integrate_to_one() {
        // Trapezoidal integration over the support.
        for k in KERNELS {
            let r = k.support_radius().min(10.0);
            let n = 20_000;
            let dx = 2.0 * r / n as f64;
            let mut sum = 0.0;
            for i in 0..=n {
                let x = -r + i as f64 * dx;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                sum += w * k.eval(x);
            }
            sum *= dx;
            assert!((sum - 1.0).abs() < 1e-3, "{:?} integrates to {}", k, sum);
        }
    }

    proptest! {
        #[test]
        fn prop_nonnegative_and_bounded(u in -20.0f64..20.0) {
            for k in KERNELS {
                let v = k.eval(u);
                prop_assert!(v >= 0.0);
                prop_assert!(v <= k.peak() + 1e-12);
            }
        }

        #[test]
        fn prop_zero_outside_support_radius(u in 1.0f64..100.0) {
            for k in KERNELS {
                let v = k.eval(k.support_radius() + u);
                prop_assert!(v < 1e-15);
            }
        }
    }
}
