//! Parametric Gaussian distribution — a cheap alternative to KDE when the
//! feature is known to be unimodal (the paper lets users override the
//! default estimator per feature).

use crate::summary::Welford;
use crate::{validate_sample, Density1d, FitError};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A fitted normal distribution.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// Fit by maximum likelihood (sample mean and sample standard
    /// deviation). A degenerate (constant) sample gets a small positive
    /// spread scaled to the data magnitude, mirroring the KDE fallback.
    pub fn fit(samples: &[f64]) -> Result<Self, FitError> {
        validate_sample(samples)?;
        let w = Welford::from_slice(samples);
        let mut std_dev = w.std_dev();
        if std_dev <= 0.0 {
            std_dev = 1e-3 * w.mean().abs().max(1.0);
        }
        Ok(Gaussian { mean: w.mean(), std_dev })
    }

    /// Construct from parameters (`std_dev` must be positive and finite).
    pub fn from_params(mean: f64, std_dev: f64) -> Result<Self, FitError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev <= 0.0 {
            return Err(FitError::NonFiniteSample);
        }
        Ok(Gaussian { mean, std_dev })
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Standard score of `x`.
    pub fn z_score(&self, x: f64) -> f64 {
        (x - self.mean) / self.std_dev
    }
}

impl Density1d for Gaussian {
    fn density(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        let z = self.z_score(x);
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * PI).sqrt())
    }

    fn max_density(&self) -> f64 {
        1.0 / (self.std_dev * (2.0 * PI).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_recovers_parameters() {
        // 1050 = 50 · 21, so every residue 0..20 appears exactly 50 times
        // and the mean is exactly zero.
        let xs: Vec<f64> = (0..1050).map(|i| (i % 21) as f64 - 10.0).collect();
        let g = Gaussian::fit(&xs).unwrap();
        assert!(g.mean().abs() < 1e-9);
        assert!(g.std_dev() > 5.0 && g.std_dev() < 7.0);
    }

    #[test]
    fn density_closed_form() {
        let g = Gaussian::from_params(0.0, 1.0).unwrap();
        assert!((g.density(0.0) - 0.3989422804014327).abs() < 1e-12);
        assert!((g.density(1.0) - 0.24197072451914337).abs() < 1e-12);
        assert!((g.max_density() - g.density(0.0)).abs() < 1e-15);
    }

    #[test]
    fn relative_likelihood_at_mean_is_one() {
        let g = Gaussian::from_params(5.0, 2.0).unwrap();
        assert!((g.relative_likelihood(5.0) - 1.0).abs() < 1e-12);
        assert!(g.relative_likelihood(15.0) < g.relative_likelihood(7.0));
    }

    #[test]
    fn constant_sample_fallback() {
        let g = Gaussian::fit(&[4.0; 10]).unwrap();
        assert!(g.std_dev() > 0.0);
        assert!((g.relative_likelihood(4.0) - 1.0).abs() < 1e-9);
        assert!(g.relative_likelihood(5.0) < 1e-6);
    }

    #[test]
    fn from_params_validation() {
        assert!(Gaussian::from_params(0.0, 0.0).is_err());
        assert!(Gaussian::from_params(0.0, -1.0).is_err());
        assert!(Gaussian::from_params(f64::NAN, 1.0).is_err());
    }

    proptest! {
        #[test]
        fn prop_symmetric_around_mean(
            mean in -100.0f64..100.0, std in 0.1f64..10.0, d in 0.0f64..20.0,
        ) {
            let g = Gaussian::from_params(mean, std).unwrap();
            let left = g.density(mean - d);
            let right = g.density(mean + d);
            prop_assert!((left - right).abs() < 1e-12 * g.max_density().max(1.0));
        }

        #[test]
        fn prop_density_decreases_away_from_mean(
            mean in -10.0f64..10.0, std in 0.5f64..5.0,
        ) {
            let g = Gaussian::from_params(mean, std).unwrap();
            let mut prev = g.density(mean);
            for i in 1..10 {
                let cur = g.density(mean + i as f64 * std / 2.0);
                prop_assert!(cur <= prev);
                prev = cur;
            }
        }
    }
}
