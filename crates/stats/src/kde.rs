//! Kernel density estimation — the default feature-distribution learner.
//!
//! `KDEObsDistribution` in the paper's worked example (Section 3) is exactly
//! this: collect feature values over historical labels, fit a KDE, and use
//! the (normalized) density of a new feature value as its likelihood.

use crate::bandwidth::{Bandwidth, BandwidthRule};
use crate::kernel::Kernel;
use crate::{validate_sample, Density1d, FitError};
use serde::{Deserialize, Serialize};

/// Exact 1D kernel density estimator.
///
/// Samples are kept sorted so that compact-support (and numerically
/// truncated Gaussian) kernels only sum over the window of contributing
/// samples, found by binary search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Kde1d {
    samples: Vec<f64>, // sorted
    kernel: Kernel,
    bandwidth: f64,
    max_density: f64,
}

impl Kde1d {
    /// Fit with the default kernel (Gaussian) and bandwidth rule
    /// (Silverman).
    pub fn fit(samples: &[f64]) -> Result<Self, FitError> {
        Self::fit_with(samples, Kernel::default(), BandwidthRule::default())
    }

    /// Fit with an explicit kernel and bandwidth rule.
    pub fn fit_with(
        samples: &[f64],
        kernel: Kernel,
        rule: BandwidthRule,
    ) -> Result<Self, FitError> {
        validate_sample(samples)?;
        let bandwidth = rule.resolve(samples);
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        let mut kde = Kde1d {
            samples: sorted,
            kernel,
            bandwidth: bandwidth.value(),
            max_density: 0.0,
        };
        // The normalizer is the density mode. Evaluating at every sample
        // is exact but O(n · window) — quadratic on dense samples — so it
        // is estimated from the same binned grid the prepared scoring path
        // uses, in O(n + grid). The grid resolves the kernel (step ≤ h/8),
        // keeping the estimate within a fraction of a percent of the mode.
        kde.max_density = BinnedKde::prepare(&kde).max_density;
        Ok(kde)
    }

    /// Number of training samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The resolved bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::new(self.bandwidth)
    }

    /// The resolved bandwidth as a raw value.
    pub fn bandwidth_value(&self) -> f64 {
        self.bandwidth
    }

    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Sorted training samples (used by [`BinnedKde`] and tests).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Reassemble a fitted KDE from its serialized parts — the binary
    /// codec's bulk-copy load path, skipping the fit entirely.
    ///
    /// `samples` must be the sorted, finite sample vector of a previous
    /// fit, `bandwidth` its resolved bandwidth, and `max_density` the
    /// normalizer taken from [`BinnedKde::prepare`] at fit time. Callers
    /// are responsible for validating untrusted input before this.
    pub fn from_sorted_parts(
        samples: Vec<f64>,
        kernel: Kernel,
        bandwidth: f64,
        max_density: f64,
    ) -> Self {
        debug_assert!(!samples.is_empty(), "Kde1d is never empty");
        debug_assert!(samples.windows(2).all(|w| w[0] <= w[1]), "samples must be sorted");
        debug_assert!(bandwidth.is_finite() && bandwidth > 0.0);
        Kde1d { samples, kernel, bandwidth, max_density }
    }

    /// Indices of samples within the kernel support window around `x`.
    fn window(&self, x: f64) -> (usize, usize) {
        let radius = self.kernel.support_radius() * self.bandwidth;
        let lo = self.samples.partition_point(|&s| s < x - radius);
        let hi = self.samples.partition_point(|&s| s <= x + radius);
        (lo, hi)
    }
}

impl Density1d for Kde1d {
    fn density(&self, x: f64) -> f64 {
        if !x.is_finite() || self.samples.is_empty() {
            return 0.0;
        }
        let (lo, hi) = self.window(x);
        if lo >= hi {
            return 0.0;
        }
        let inv_h = 1.0 / self.bandwidth;
        let mut acc = 0.0;
        for &s in &self.samples[lo..hi] {
            acc += self.kernel.eval((x - s) * inv_h);
        }
        acc * inv_h / self.samples.len() as f64
    }

    fn max_density(&self) -> f64 {
        self.max_density
    }
}

/// Grid-accelerated KDE: densities precomputed on a uniform grid at fit
/// time, evaluated by linear interpolation.
///
/// Evaluation is O(1) instead of O(window); fitting is O(n + grid·window).
/// Used for the large pooled distributions in the learner (an ablation
/// bench quantifies the approximation error and the speedup).
///
/// `PartialEq` compares the full grid — the learner uses it to detect
/// classes whose prepared grids came out identical (same samples, same
/// fit) and share one allocation between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedKde {
    grid_start: f64,
    grid_step: f64,
    densities: Vec<f64>,
    max_density: f64,
}

impl BinnedKde {
    /// Default grid resolution.
    pub const DEFAULT_BINS: usize = 1024;

    /// Build from an exact KDE with the default grid resolution.
    pub fn from_kde(kde: &Kde1d) -> Self {
        Self::from_kde_with_bins(kde, Self::DEFAULT_BINS)
    }

    /// Build from an exact KDE with an explicit grid resolution (≥ 2).
    pub fn from_kde_with_bins(kde: &Kde1d, bins: usize) -> Self {
        let bins = bins.max(2);
        let radius = kde.kernel().support_radius() * kde.bandwidth_value();
        let lo = kde.samples().first().copied().unwrap_or(0.0) - radius;
        let hi = kde.samples().last().copied().unwrap_or(0.0) + radius;
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let step = span / (bins - 1) as f64;
        let densities: Vec<f64> = (0..bins).map(|i| kde.density(lo + i as f64 * step)).collect();
        let max_density = densities.iter().copied().fold(0.0f64, f64::max);
        BinnedKde { grid_start: lo, grid_step: step, densities, max_density }
    }

    /// Grid steps per bandwidth unit for [`prepare`](Self::prepare): the
    /// step is at most `h / 8`, so the kernel is always well resolved and
    /// linear interpolation stays within a fraction of a percent of the
    /// exact density.
    const STEPS_PER_BANDWIDTH: f64 = 8.0;

    /// Resolution bounds for [`prepare`](Self::prepare).
    const MIN_BINS: usize = 64;
    const MAX_BINS: usize = 32_768;

    /// Build the query-optimized scoring grid in `O(n + grid · kernel)`.
    ///
    /// Unlike [`from_kde`](Self::from_kde) — which evaluates the exact
    /// density at every grid point, `O(grid · window)` — this bins the
    /// samples onto the grid with linear weights and convolves the binned
    /// mass with the kernel sampled at grid offsets. The grid resolution
    /// adapts to the bandwidth (step ≤ h/8, within
    /// [`MIN_BINS`](Self::MIN_BINS)..=[`MAX_BINS`](Self::MAX_BINS)).
    ///
    /// This is the canonical scoring representation: `Kde1d::fit` takes
    /// its `max_density` from this grid, so exact and prepared relative
    /// likelihoods share one normalizer and rebuilding the grid from a
    /// deserialized [`Kde1d`] is bit-identical to building it at fit time.
    pub fn prepare(kde: &Kde1d) -> Self {
        let samples = kde.samples();
        let kernel = kde.kernel();
        let h = kde.bandwidth_value();
        let n = samples.len();
        debug_assert!(n > 0, "Kde1d is never empty");
        let radius = kernel.support_radius() * h;
        let lo = samples.first().copied().unwrap_or(0.0) - radius;
        let hi = samples.last().copied().unwrap_or(0.0) + radius;
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let ideal = (span * Self::STEPS_PER_BANDWIDTH / h).ceil() as usize + 1;
        let bins = ideal.clamp(Self::MIN_BINS, Self::MAX_BINS);
        let step = span / (bins - 1) as f64;

        // Linear binning: each sample splits its unit mass between the two
        // surrounding grid points.
        let mut mass = vec![0.0f64; bins];
        for &x in samples {
            let pos = ((x - lo) / step).clamp(0.0, (bins - 1) as f64);
            let j = (pos.floor() as usize).min(bins - 2);
            let frac = pos - j as f64;
            mass[j] += 1.0 - frac;
            mass[j + 1] += frac;
        }

        // Kernel weights at bin offsets, truncated at the support radius —
        // the same truncation the exact window sum uses.
        let k = ((radius / step).ceil() as usize).min(bins - 1);
        let weights: Vec<f64> = (0..=k).map(|d| kernel.eval(d as f64 * step / h)).collect();

        // Scatter each non-empty bin's mass through the kernel window.
        let mut densities = vec![0.0f64; bins];
        for (j, &m) in mass.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            densities[j] += m * weights[0];
            for (d, &w) in weights.iter().enumerate().skip(1) {
                if j >= d {
                    densities[j - d] += m * w;
                }
                if j + d < bins {
                    densities[j + d] += m * w;
                }
            }
        }
        let norm = 1.0 / (n as f64 * h);
        for d in &mut densities {
            *d *= norm;
        }

        let mut max_density = densities.iter().copied().fold(0.0f64, f64::max);
        if step > h / Self::STEPS_PER_BANDWIDTH {
            // Resolution was clamped at MAX_BINS (data spread over
            // thousands of bandwidths): the grid may straddle narrow
            // modes, so recover the normalizer exactly from the samples.
            // Windows are tiny in exactly this regime, so this stays
            // O(n · window) with a small window.
            max_density = samples.iter().map(|&x| kde.density(x)).fold(max_density, f64::max);
        }
        BinnedKde { grid_start: lo, grid_step: step, densities, max_density }
    }

    /// Fit directly from samples (exact KDE fit, then binned).
    pub fn fit(samples: &[f64]) -> Result<Self, FitError> {
        Ok(Self::from_kde(&Kde1d::fit(samples)?))
    }

    /// Number of grid points.
    pub fn bins(&self) -> usize {
        self.densities.len()
    }

    /// Left edge of the grid.
    pub fn grid_start(&self) -> f64 {
        self.grid_start
    }

    /// Grid spacing.
    pub fn grid_step(&self) -> f64 {
        self.grid_step
    }

    /// The precomputed density at each grid point.
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }

    /// Reassemble a prepared grid from its serialized parts — the binary
    /// codec's bulk-copy load path, skipping the `O(n + grid · kernel)`
    /// convolution of [`prepare`](Self::prepare). Callers are responsible
    /// for validating untrusted input (≥ 2 bins, finite, positive step).
    pub fn from_raw_parts(
        grid_start: f64,
        grid_step: f64,
        densities: Vec<f64>,
        max_density: f64,
    ) -> Self {
        debug_assert!(densities.len() >= 2, "a grid needs at least two points");
        debug_assert!(grid_step > 0.0);
        BinnedKde { grid_start, grid_step, densities, max_density }
    }
}

impl Density1d for BinnedKde {
    fn density(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        let pos = (x - self.grid_start) / self.grid_step;
        if pos < 0.0 || pos > (self.densities.len() - 1) as f64 {
            return 0.0;
        }
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(self.densities.len() - 1);
        let frac = pos - lo as f64;
        self.densities[lo] * (1.0 - frac) + self.densities[hi] * frac
    }

    fn max_density(&self) -> f64 {
        self.max_density
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::P_FLOOR;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand_distr::Normal;

    fn normal_sample(n: usize, mean: f64, std: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Normal::new(mean, std).unwrap();
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn fit_rejects_bad_samples() {
        assert!(matches!(Kde1d::fit(&[]), Err(FitError::EmptySample)));
        assert!(matches!(Kde1d::fit(&[1.0, f64::NAN]), Err(FitError::NonFiniteSample)));
    }

    #[test]
    fn kde_recovers_gaussian_density() {
        let xs = normal_sample(5000, 10.0, 2.0, 42);
        let kde = Kde1d::fit(&xs).unwrap();
        // Compare against the true N(10, 2²) density at a few points.
        for (x, truth) in [(10.0, 0.19947), (12.0, 0.12099), (6.0, 0.02700)] {
            let est = kde.density(x);
            assert!((est - truth).abs() < 0.02, "density({x}) = {est}, want ≈ {truth}");
        }
    }

    #[test]
    fn kde_integrates_to_one() {
        let xs = normal_sample(800, 0.0, 1.0, 7);
        for kernel in [Kernel::Gaussian, Kernel::Epanechnikov, Kernel::Tophat] {
            let kde = Kde1d::fit_with(&xs, kernel, BandwidthRule::Silverman).unwrap();
            let (lo, hi) = (-8.0, 8.0);
            let n = 4000;
            let dx = (hi - lo) / n as f64;
            let mut sum = 0.0;
            for i in 0..=n {
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                sum += w * kde.density(lo + i as f64 * dx);
            }
            sum *= dx;
            assert!((sum - 1.0).abs() < 1e-2, "{kernel:?} integrates to {sum}");
        }
    }

    #[test]
    fn relative_likelihood_peaks_at_mode() {
        let xs = normal_sample(2000, 5.0, 1.0, 3);
        let kde = Kde1d::fit(&xs).unwrap();
        assert!(kde.relative_likelihood(5.0) > 0.9);
        assert!(kde.relative_likelihood(5.0) <= 1.0);
        assert!(kde.relative_likelihood(50.0) <= 1e-6);
        assert_eq!(kde.relative_likelihood(f64::NAN), P_FLOOR);
    }

    #[test]
    fn unlikely_values_rank_below_likely_values() {
        // The paper's core premise: a 300 mph speed should score far below
        // a 30 mph speed under a distribution learned from real speeds.
        let speeds = normal_sample(1000, 13.0, 5.0, 11); // ~30 mph mean
        let kde = Kde1d::fit(&speeds).unwrap();
        let likely = kde.relative_likelihood(13.0);
        let unlikely = kde.relative_likelihood(134.0); // ~300 mph
        assert!(likely > 100.0 * unlikely);
    }

    #[test]
    fn single_sample_is_a_spike() {
        let kde = Kde1d::fit(&[5.0]).unwrap();
        assert!(kde.relative_likelihood(5.0) > 0.99);
        assert!(kde.relative_likelihood(6.0) < 1e-3);
    }

    #[test]
    fn constant_sample_is_a_spike() {
        let kde = Kde1d::fit(&[2.5; 50]).unwrap();
        assert!(kde.relative_likelihood(2.5) > 0.99);
        assert!(kde.relative_likelihood(3.5) < 1e-3);
    }

    #[test]
    fn compact_kernel_exact_window() {
        // Tophat with fixed bandwidth: density is piecewise constant and
        // exactly computable: K(u)=0.5 for |u|<=1, h=1 → each sample within
        // distance 1 contributes 0.5 / n.
        let xs = [0.0, 1.0, 2.0, 10.0];
        let kde = Kde1d::fit_with(&xs, Kernel::Tophat, BandwidthRule::Fixed(1.0)).unwrap();
        // At x=1: samples 0,1,2 are within distance 1 → 3 * 0.5 / 4 = 0.375.
        assert!((kde.density(1.0) - 0.375).abs() < 1e-12);
        // At x=10: only the sample at 10 → 0.125.
        assert!((kde.density(10.0) - 0.125).abs() < 1e-12);
        // Far away: zero.
        assert_eq!(kde.density(100.0), 0.0);
    }

    #[test]
    fn binned_kde_tracks_exact_kde() {
        let xs = normal_sample(2000, -3.0, 1.5, 99);
        let kde = Kde1d::fit(&xs).unwrap();
        let binned = BinnedKde::from_kde_with_bins(&kde, 4096);
        for i in -80..80 {
            let x = i as f64 * 0.1;
            let exact = kde.density(x);
            let approx = binned.density(x);
            assert!(
                (exact - approx).abs() < 0.01 * kde.max_density().max(1e-12) + 1e-6,
                "at {x}: exact {exact} vs binned {approx}"
            );
        }
    }

    #[test]
    fn binned_kde_zero_outside_grid() {
        let kde = Kde1d::fit(&[0.0, 1.0, 2.0]).unwrap();
        let binned = BinnedKde::from_kde(&kde);
        assert_eq!(binned.density(1e6), 0.0);
        assert_eq!(binned.density(-1e6), 0.0);
        assert_eq!(binned.density(f64::NAN), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_density_nonnegative(
            xs in proptest::collection::vec(-100.0f64..100.0, 1..60),
            q in -200.0f64..200.0,
        ) {
            let kde = Kde1d::fit(&xs).unwrap();
            prop_assert!(kde.density(q) >= 0.0);
            let rl = kde.relative_likelihood(q);
            prop_assert!((P_FLOOR..=1.0).contains(&rl));
        }

        #[test]
        fn prop_max_density_dominates_samples(
            xs in proptest::collection::vec(-50.0f64..50.0, 2..60),
        ) {
            // max_density is estimated on the prepared grid (step ≤ h/8),
            // which can undershoot the true mode by a fraction of a
            // percent — relative_likelihood clamps the excess to 1.
            let kde = Kde1d::fit(&xs).unwrap();
            for &x in kde.samples() {
                prop_assert!(kde.density(x) <= kde.max_density() * 1.01 + 1e-12);
            }
        }

        #[test]
        fn prop_prepared_density_tracks_exact(
            xs in proptest::collection::vec(-50.0f64..50.0, 1..80),
            qs in proptest::collection::vec(-60.0f64..60.0, 1..20),
        ) {
            let kde = Kde1d::fit(&xs).unwrap();
            let prepared = BinnedKde::prepare(&kde);
            for q in qs {
                let exact = kde.density(q);
                let approx = prepared.density(q);
                prop_assert!(
                    (exact - approx).abs() <= 0.02 * kde.max_density() + 1e-9,
                    "at {q}: exact {exact} vs prepared {approx}"
                );
                let rl_gap = (kde.relative_likelihood(q) - prepared.relative_likelihood(q)).abs();
                prop_assert!(rl_gap <= 0.02 + 1e-9, "relative likelihood gap {rl_gap} at {q}");
            }
        }

        #[test]
        fn prop_prepare_is_deterministic_and_shares_normalizer(
            xs in proptest::collection::vec(-50.0f64..50.0, 1..60),
        ) {
            // Rebuilding the grid from the (serializable) KDE state must be
            // bit-identical — the fit/load byte-determinism contract — and
            // the exact KDE's normalizer IS the grid max.
            let kde = Kde1d::fit(&xs).unwrap();
            let a = BinnedKde::prepare(&kde);
            let b = BinnedKde::prepare(&kde);
            prop_assert_eq!(a.max_density().to_bits(), b.max_density().to_bits());
            prop_assert_eq!(a.bins(), b.bins());
            prop_assert_eq!(a.max_density().to_bits(), kde.max_density().to_bits());
            for q in [-55.0, -10.0, 0.0, 3.7, 49.0] {
                prop_assert_eq!(a.density(q).to_bits(), b.density(q).to_bits());
            }
        }

        #[test]
        fn prop_binned_bounded_by_max(
            xs in proptest::collection::vec(-50.0f64..50.0, 2..60),
            q in -60.0f64..60.0,
        ) {
            let kde = Kde1d::fit(&xs).unwrap();
            let binned = BinnedKde::from_kde(&kde);
            prop_assert!(binned.density(q) <= binned.max_density() + 1e-12);
        }

        #[test]
        fn prop_kde_integrates_to_one(
            xs in proptest::collection::vec(-40.0f64..40.0, 2..50),
        ) {
            // A KDE is a density: for any sample, the trapezoid integral
            // over the full kernel support must be ≈ 1.
            let kde = Kde1d::fit(&xs).unwrap();
            let radius = kde.kernel().support_radius() * kde.bandwidth_value();
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min) - radius;
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) + radius;
            let n = 4000;
            let dx = (hi - lo) / n as f64;
            let mut sum = 0.0;
            for i in 0..=n {
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                sum += w * kde.density(lo + i as f64 * dx);
            }
            sum *= dx;
            prop_assert!((sum - 1.0).abs() < 2e-2, "integral {sum}");
        }
    }
}
