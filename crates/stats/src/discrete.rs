//! Discrete distributions.
//!
//! The paper's bundle-consistency example (Section 5.1): *"a user could
//! provide a feature that returns 0 if all the classes agree and 1
//! otherwise. The feature would then learn the Bernoulli probability of the
//! class agreement between observation types."*

use crate::{Density1d, FitError, P_FLOOR};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fitted Bernoulli distribution over {0, 1}.
///
/// Fitted with add-one (Laplace) smoothing so that an event never seen in
/// training keeps a small nonzero probability — unseen ≠ impossible, and
/// LOA needs finite log-likelihoods.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bernoulli {
    p_one: f64,
}

impl Bernoulli {
    /// Fit from 0/1-valued samples (values are thresholded at 0.5).
    pub fn fit(samples: &[f64]) -> Result<Self, FitError> {
        crate::validate_sample(samples)?;
        let ones = samples.iter().filter(|&&x| x >= 0.5).count();
        // Laplace smoothing.
        let p_one = (ones as f64 + 1.0) / (samples.len() as f64 + 2.0);
        Ok(Bernoulli { p_one })
    }

    /// Construct directly from `P(X = 1)`.
    pub fn from_p(p_one: f64) -> Result<Self, FitError> {
        if !(0.0..=1.0).contains(&p_one) {
            return Err(FitError::NonFiniteSample);
        }
        Ok(Bernoulli { p_one })
    }

    /// `P(X = 1)`.
    pub fn p_one(&self) -> f64 {
        self.p_one
    }

    /// Probability mass at 0 or 1 (thresholded at 0.5).
    pub fn pmf(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        if x >= 0.5 {
            self.p_one
        } else {
            1.0 - self.p_one
        }
    }
}

impl Density1d for Bernoulli {
    fn density(&self, x: f64) -> f64 {
        self.pmf(x)
    }

    fn max_density(&self) -> f64 {
        self.p_one.max(1.0 - self.p_one)
    }
}

/// A fitted categorical distribution over integer-coded categories.
///
/// Also Laplace-smoothed over the observed support; categories never seen
/// at all fall back to [`P_FLOOR`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Categorical {
    probs: BTreeMap<i64, f64>,
    max_p: f64,
}

impl Categorical {
    /// Fit from integer-coded category samples.
    pub fn fit(samples: &[i64]) -> Result<Self, FitError> {
        if samples.is_empty() {
            return Err(FitError::EmptySample);
        }
        let mut counts: BTreeMap<i64, u64> = BTreeMap::new();
        for &s in samples {
            *counts.entry(s).or_insert(0) += 1;
        }
        let k = counts.len() as f64;
        let n = samples.len() as f64;
        let probs: BTreeMap<i64, f64> = counts
            .into_iter()
            .map(|(cat, c)| (cat, (c as f64 + 1.0) / (n + k)))
            .collect();
        let max_p = probs.values().copied().fold(0.0f64, f64::max);
        Ok(Categorical { probs, max_p })
    }

    /// Probability mass of a category (smoothed floor for unseen ones).
    pub fn pmf(&self, category: i64) -> f64 {
        self.probs.get(&category).copied().unwrap_or(P_FLOOR)
    }

    /// Relative likelihood of a category in `[P_FLOOR, 1]`.
    pub fn relative_likelihood_of(&self, category: i64) -> f64 {
        if self.max_p <= 0.0 {
            return P_FLOOR;
        }
        (self.pmf(category) / self.max_p).clamp(P_FLOOR, 1.0)
    }

    /// Number of distinct categories seen at fit time.
    pub fn support_size(&self) -> usize {
        self.probs.len()
    }

    /// The modal category.
    pub fn mode(&self) -> Option<i64> {
        self.probs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(&cat, _)| cat)
    }
}

impl Density1d for Categorical {
    fn density(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        self.pmf(x.round() as i64)
    }

    fn max_density(&self) -> f64 {
        self.max_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bernoulli_fit_with_smoothing() {
        // 8 ones out of 10 → smoothed (8+1)/(10+2) = 0.75.
        let samples = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0];
        let b = Bernoulli::fit(&samples).unwrap();
        assert!((b.p_one() - 0.75).abs() < 1e-12);
        assert!((b.pmf(1.0) - 0.75).abs() < 1e-12);
        assert!((b.pmf(0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_all_ones_never_certain() {
        let b = Bernoulli::fit(&[1.0; 100]).unwrap();
        assert!(b.pmf(0.0) > 0.0);
        assert!(b.pmf(1.0) < 1.0);
    }

    #[test]
    fn bernoulli_relative_likelihood() {
        let b = Bernoulli::from_p(0.9).unwrap();
        assert!((b.relative_likelihood(1.0) - 1.0).abs() < 1e-12);
        assert!((b.relative_likelihood(0.0) - 0.1 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_from_p_validation() {
        assert!(Bernoulli::from_p(1.5).is_err());
        assert!(Bernoulli::from_p(-0.1).is_err());
        assert!(Bernoulli::from_p(f64::NAN).is_err());
    }

    #[test]
    fn categorical_fit_counts() {
        let samples = [0, 0, 0, 1, 1, 2];
        let c = Categorical::fit(&samples).unwrap();
        assert_eq!(c.support_size(), 3);
        // Smoothed: (3+1)/(6+3), (2+1)/9, (1+1)/9.
        assert!((c.pmf(0) - 4.0 / 9.0).abs() < 1e-12);
        assert!((c.pmf(1) - 3.0 / 9.0).abs() < 1e-12);
        assert!((c.pmf(2) - 2.0 / 9.0).abs() < 1e-12);
        assert_eq!(c.mode(), Some(0));
    }

    #[test]
    fn categorical_unseen_category_floored() {
        let c = Categorical::fit(&[1, 1, 2]).unwrap();
        assert_eq!(c.pmf(99), P_FLOOR);
        assert_eq!(c.relative_likelihood_of(99), P_FLOOR / c.max_density());
    }

    #[test]
    fn categorical_empty_rejected() {
        assert!(matches!(Categorical::fit(&[]), Err(FitError::EmptySample)));
    }

    #[test]
    fn categorical_density_rounds() {
        let c = Categorical::fit(&[5, 5, 6]).unwrap();
        assert_eq!(c.density(5.2), c.pmf(5));
        assert_eq!(c.density(5.6), c.pmf(6));
        assert_eq!(c.density(f64::NAN), 0.0);
    }

    proptest! {
        #[test]
        fn prop_bernoulli_mass_sums_to_one(
            xs in proptest::collection::vec(0.0f64..1.0, 1..100),
        ) {
            let b = Bernoulli::fit(&xs).unwrap();
            prop_assert!((b.pmf(0.0) + b.pmf(1.0) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_categorical_mass_sums_to_one(
            xs in proptest::collection::vec(-5i64..5, 1..200),
        ) {
            let c = Categorical::fit(&xs).unwrap();
            let total: f64 = c.probs.values().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
