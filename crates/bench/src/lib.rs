//! Experiment-reproduction binaries and criterion benches for the Fixy
//! reproduction.
//!
//! Binaries (one per table/figure of the paper):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2` | Table 2 — the feature inventory |
//! | `table3` | Table 3 — missing-track precision vs ad-hoc MAs |
//! | `recall` | §8.2 — audited-scene recall + scene-level top-10 hits |
//! | `missing_obs` | §8.3 — missing observation rank case study |
//! | `model_errors` | §8.4 — Fixy vs uncertainty sampling |
//! | `runtime` | §8.1 — runtime per scene |
//! | `figures` | Figures 1, 2, 4–9 — BEV ASCII plots + SVGs + graph dump |
//! | `ablation_features` | ours — feature subsets, track-length pathology |
//!
//! Pass `--fast` to any binary for a shrunken CI-sized run; default sizes
//! match the paper's scene counts.

/// Common reproduction-binary options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    pub fast: bool,
    pub seed: u64,
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { fast: false, seed: 0xF1C5, out_dir: None }
    }
}

/// Parse the common `--fast` / `--seed N` / `--out DIR` flags.
pub fn parse_args() -> RunOptions {
    let mut options = RunOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => options.fast = true,
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed requires an integer");
            }
            "--out" => {
                options.out_dir = args.next().map(std::path::PathBuf::from);
            }
            other => {
                eprintln!("unknown flag {other}; supported: --fast, --seed N, --out DIR");
                std::process::exit(2);
            }
        }
    }
    options
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = RunOptions::default();
        assert!(!o.fast);
        assert_eq!(o.seed, 0xF1C5);
        assert!(o.out_dir.is_none());
    }
}
