//! Reproduces the paper's **figures** as BEV ASCII plots (stdout) and SVG
//! files (with `--out DIR`):
//!
//! * Figure 1 — missing truck near the AV,
//! * Figure 2 — the compiled factor graph of a track (structure dump),
//! * Figure 4 — occluded motorcycle, briefly visible,
//! * Figures 5/9 — inconsistent persistent model ghost,
//! * Figure 6 — missing human label within a track,
//! * Figure 7 — low-probability person/truck bundle.
//!
//! `cargo run --release -p loa-bench --bin figures [--out DIR]`

use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_bench::parse_args;
use loa_data::scenarios::all_scenarios;
use loa_data::{generate_scene, DatasetProfile, LidarConfig};
use loa_render::{render_frame_ascii, render_frame_svg, AsciiOptions, FrameLayers, SvgOptions};

fn main() {
    let options = parse_args();
    let lidar = LidarConfig::default();

    for (label, scenario) in all_scenarios(options.seed) {
        println!("\n================================================================");
        println!("{label}: {}", scenario.description);
        println!("================================================================");
        let frame_id = scenario.focus_frames.first().copied().unwrap_or(loa_data::FrameId(0));
        let frame = &scenario.scene.frames[frame_id.0 as usize];
        let layers = FrameLayers::from_frame(frame, Some(&lidar));
        println!(
            "frame {} — '!' missing object, '#' human label, '+' model box, '.' LIDAR\n",
            frame_id.0
        );
        println!("{}", render_frame_ascii(&layers, AsciiOptions::default()));

        if let Some(dir) = &options.out_dir {
            std::fs::create_dir_all(dir).expect("create out dir");
            let path = dir.join(format!("{label}.svg"));
            std::fs::write(&path, render_frame_svg(&layers, SvgOptions::default()))
                .expect("write svg");
            eprintln!("wrote {}", path.display());
        }
    }

    // Figure 2: the compiled factor graph of a track.
    println!("\n================================================================");
    println!("figure2: factor graph of a compiled track");
    println!("================================================================");
    let mut cfg = DatasetProfile::LyftLike.scene_config();
    cfg.world.duration = 2.0;
    cfg.lidar.beam_count = 300;
    let data = generate_scene(&cfg, "figure2", options.seed);
    let finder = MissingTrackFinder::default();
    let library = Learner::new()
        .fit(&finder.feature_set(), std::slice::from_ref(&data))
        .expect("fit");
    let scene = Scene::assemble(&data, &AssemblyConfig::default());
    let features = finder.feature_set();
    let compiled = fixy_core::compile::compile_scene(&scene, &features, &library).expect("compile");

    // Pick a track with ~5 bundles, like the figure.
    let track = scene
        .tracks()
        .iter()
        .filter(|t| scene.track_bundles(t.idx).len() >= 3)
        .min_by_key(|t| (scene.track_bundles(t.idx).len() as i64 - 5).abs())
        .expect("a track exists");
    let obs = scene.track_obs(track);
    println!(
        "track {:?}: {} bundles, {} observations",
        track.idx,
        scene.track_bundles(track.idx).len(),
        obs.len()
    );
    let vars = compiled.vars_of(&obs);
    let factors = compiled.graph.component_factors(&vars, loa_graph::ScopeMode::Within);
    println!("variables (observations):");
    for &o in &obs {
        let ob = scene.obs(o);
        println!("  ω{} — frame {:>2} {:?} {}", o.0, ob.frame.0, ob.source, ob.class);
    }
    println!("factors (feature distributions):");
    for f in factors {
        let info = compiled.graph.factor(f);
        let scope: Vec<String> = compiled
            .graph
            .scope(f)
            .iter()
            .map(|v| format!("ω{}", compiled.graph.var(*v).0))
            .collect();
        println!(
            "  {:<12} p={:.3}  —[{}]",
            features.features[info.feature_index].feature.name(),
            info.probability,
            scope.join(", ")
        );
    }
}
