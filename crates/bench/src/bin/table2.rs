//! Reproduces **Table 2**: the features used in the evaluation.
//!
//! `cargo run --release -p loa-bench --bin table2`

use fixy_core::prelude::*;
use loa_eval::report::Table;

fn main() {
    let set = FeatureSet::paper_default();
    let mut table = Table::new(vec!["Name", "Type", "Description", "Probability"]);
    for bf in &set.features {
        let model = match bf.feature.probability_model() {
            fixy_core::feature::ProbabilityModel::LearnedKde => "learned (KDE)",
            fixy_core::feature::ProbabilityModel::LearnedHistogram => "learned (histogram)",
            fixy_core::feature::ProbabilityModel::LearnedBernoulli => "learned (Bernoulli)",
            fixy_core::feature::ProbabilityModel::LearnedJointKde => "learned (joint KDE)",
            fixy_core::feature::ProbabilityModel::Manual => "manually specified",
        };
        let kind = match bf.feature.kind() {
            FeatureKind::Observation => "Obs.",
            FeatureKind::Bundle => "Bundle",
            FeatureKind::Transition => "Trans.",
            FeatureKind::Track => "Track",
        };
        table.row(vec![bf.feature.name(), kind, bf.feature.description(), model]);
    }
    println!("Table 2: Description of features used in this evaluation.");
    println!("(Model only and count are manually specified features.)\n");
    print!("{}", table.render());
}
