//! Audit-efficiency curve (extension of the Section 8.2 protocol):
//! fraction of all injected missing tracks recovered as a function of the
//! per-scene audit budget k, for Fixy vs the consistency-MA orderings.
//!
//! `cargo run --release -p loa-bench --bin audit_curve [--fast] [--seed N]`

use loa_bench::parse_args;
use loa_eval::report::{pct, Table};
use loa_eval::run_audit_curve;

fn main() {
    let options = parse_args();
    let n_train = if options.fast { 3 } else { 8 };
    let n_scenes = if options.fast { 6 } else { 20 };
    let budgets = [1usize, 2, 3, 5, 10, 20];

    eprintln!("Sweeping audit budgets over {n_scenes} Lyft-like scenes…");
    let result = run_audit_curve(options.seed, n_train, n_scenes, &budgets, options.fast);

    println!(
        "\nAudit-efficiency: recall of all {} injected missing tracks",
        result.total_errors
    );
    println!("as a function of the per-scene audit budget k.\n");
    let mut headers = vec!["Method".to_string()];
    headers.extend(budgets.iter().map(|k| format!("k={k}")));
    let mut table = Table::new(headers);
    for curve in &result.curves {
        let mut row = vec![curve.method.clone()];
        row.extend(curve.points.iter().map(|&(_, r)| pct(r)));
        table.row(row);
    }
    print!("{}", table.render());
    println!("\nReading: at the same audit budget, Fixy recovers more of the");
    println!("vendor's misses — or equivalently, reaches the same recall with");
    println!("fewer audited candidates (the organization's actual cost).");
}
