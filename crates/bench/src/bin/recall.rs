//! Reproduces the **Section 8.2 recall** results: recall on an
//! exhaustively audited scene (paper: 75% = 18/24 in top-10 per class) and
//! the scene-level experiment (paper: errors in 32/46 Lyft scenes; 100% of
//! scenes-with-errors hit in the top 10).
//!
//! `cargo run --release -p loa-bench --bin recall [--fast] [--seed N]`

use loa_bench::parse_args;
use loa_eval::report::pct_opt;
use loa_eval::{run_recall_experiment, run_scene_level_recall};

fn main() {
    let options = parse_args();
    let n_train = if options.fast { 3 } else { 8 };
    let n_scenes = if options.fast { 8 } else { 46 };

    eprintln!("Running audited-scene recall experiment…");
    let audited = run_recall_experiment(options.seed, n_train, options.fast);
    println!("\nSection 8.2 — exhaustively audited scene:");
    println!(
        "  {} missing tracks injected; {} found in top-10 per class → recall {:.0}%",
        audited.total_missing,
        audited.found,
        audited.recall * 100.0
    );
    println!("  (paper: 24 missing tracks, 18 found, recall 75%)");

    eprintln!("Running scene-level experiment over {n_scenes} Lyft-like scenes…");
    let slr = run_scene_level_recall(options.seed + 1, n_train, n_scenes, options.fast);
    println!("\nSection 8.2 — scene-level:");
    println!(
        "  {} of {} scenes contain label errors; top-10 hits ≥1 error in {} of them ({})",
        slr.scenes_with_errors,
        slr.total_scenes,
        slr.scenes_hit_in_top10,
        pct_opt(slr.hit_fraction()),
    );
    println!("  (paper: errors in 32 of 46 scenes; 100% hit in top 10)");
}
