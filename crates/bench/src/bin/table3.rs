//! Reproduces **Table 3**: precision at top 10/5/1 of Fixy and ad-hoc MA
//! baselines for finding tracks missed by humans.
//!
//! `cargo run --release -p loa-bench --bin table3 [--fast] [--seed N]`
//!
//! Default run: 46 Lyft-like + 13 Internal-like evaluation scenes (the
//! paper's counts), 8 training scenes per profile.

use loa_bench::parse_args;
use loa_eval::report::{pct_opt, Table};
use loa_eval::{run_table3, Table3Config};

fn main() {
    let options = parse_args();
    let cfg = Table3Config {
        n_train: if options.fast { 3 } else { 8 },
        n_eval_lyft: if options.fast { 8 } else { 46 },
        n_eval_internal: if options.fast { 4 } else { 13 },
        base_seed: options.seed,
        fast: options.fast,
    };
    eprintln!(
        "Running Table 3: {} Lyft-like + {} Internal-like scenes (train {} each){}",
        cfg.n_eval_lyft,
        cfg.n_eval_internal,
        cfg.n_train,
        if cfg.fast { " [fast]" } else { "" },
    );
    let result = run_table3(&cfg);

    let mut table = Table::new(vec![
        "Method",
        "Dataset",
        "Precision at top 10",
        "Precision at top 5",
        "Precision at top 1",
        "Scenes",
    ]);
    for row in &result.rows {
        table.row(vec![
            row.method.clone(),
            row.dataset.clone(),
            pct_opt(row.p10),
            pct_opt(row.p5),
            pct_opt(row.p1),
            row.scenes.to_string(),
        ]);
    }
    println!("\nTable 3: Precision of Fixy and ad-hoc MA baselines for finding");
    println!("tracks missed by humans (paper: Fixy 69%/70%/67% Lyft,");
    println!("76%/100%/100% Internal; ad-hoc rand 32%/30%/24% Lyft).\n");
    print!("{}", table.render());

    if let Some(dir) = options.out_dir {
        std::fs::create_dir_all(&dir).expect("create out dir");
        let path = dir.join("table3.json");
        std::fs::write(&path, serde_json::to_string_pretty(&result).expect("serialize"))
            .expect("write results");
        eprintln!("wrote {}", path.display());
    }
}
