//! Reproduces the **Section 8.3 missing-observation** case study: the
//! paper found a single missing observation within a track and Fixy
//! ranked it at the top. We instantiate the Figure 6 scenario across
//! seeds and report the rank statistics vs random candidate ordering.
//!
//! `cargo run --release -p loa-bench --bin missing_obs [--fast] [--seed N]`

use loa_bench::parse_args;
use loa_eval::run_missing_obs_experiment;

fn main() {
    let options = parse_args();
    let n_train = if options.fast { 2 } else { 6 };
    let n_cases = if options.fast { 4 } else { 12 };

    eprintln!("Running {n_cases} instances of the Figure 6 scenario…");
    let result = run_missing_obs_experiment(options.seed, n_train, n_cases);
    println!("\nSection 8.3 — finding missing observations within tracks:");
    println!("  cases resolved:         {}", result.n_cases);
    println!(
        "  Fixy ranked #1:         {} of {} ({:.0}%)",
        result.fixy_rank1,
        result.n_cases,
        100.0 * result.fixy_rank1 as f64 / result.n_cases.max(1) as f64
    );
    println!("  Fixy mean rank:         {:.2}", result.fixy_mean_rank);
    println!("  random-order mean rank: {:.2}", result.random_mean_rank);
    println!("  (paper: the single missing observation ranked at the top)");
}
