//! Reproduces the **Section 8.1 runtime** claim: *"Fixy executes in under
//! five seconds on a single CPU core for processing a 15 second scene of
//! data."*
//!
//! `cargo run --release -p loa-bench --bin runtime [--seed N]`

use loa_bench::parse_args;
use loa_eval::run_runtime_experiment;

fn main() {
    let options = parse_args();
    eprintln!("Timing the end-to-end pipeline on a 15 s Internal-like scene…");
    let result = run_runtime_experiment(options.seed, 4);
    println!("\nSection 8.1 — runtime:");
    println!(
        "  scene duration:   {:.0} s ({} frames)",
        result.scene_seconds, result.frames
    );
    println!("  observations:     {}", result.observations);
    println!("  offline learning: {:.1} ms", result.offline_ms);
    println!(
        "  online phase:     {:.1} ms (assemble + compile + score + rank, 1 core)",
        result.online_ms
    );
    println!(
        "  paper bound:      5000 ms → {}",
        if result.under_five_seconds() { "PASS" } else { "FAIL" }
    );
}
