//! Reproduces the **Section 8.4 model-error** comparison: Fixy (inverted
//! AOFs, after excluding what the appear/flicker/multibox assertions
//! find) vs uncertainty sampling, over 5 Lyft-like scenes.
//!
//! `cargo run --release -p loa-bench --bin model_errors [--fast] [--seed N]`

use loa_bench::parse_args;
use loa_eval::report::pct_opt;
use loa_eval::run_model_error_experiment;

fn main() {
    let options = parse_args();
    let n_train = if options.fast { 3 } else { 8 };
    let n_scenes = if options.fast { 4 } else { 5 };

    eprintln!("Running the model-error experiment over {n_scenes} scenes…");
    let result = run_model_error_experiment(options.seed, n_train, n_scenes, options.fast);
    println!("\nSection 8.4 — finding novel ML prediction errors:");
    println!("  scenes:                        {}", result.scenes);
    println!("  Fixy precision@10:             {}", pct_opt(result.fixy_p10));
    println!("  uncertainty sampling p@10:     {}", pct_opt(result.uncertainty_p10));
    if let Some(c) = result.max_hit_confidence {
        println!("  highest-confidence true error: {:.0}% model confidence", c * 100.0);
    }
    println!("  (paper: Fixy 82% vs uncertainty sampling 42%; errors found at");
    println!("   confidences as high as 95%)");
}
