//! Feature-subset ablation (our addition, motivated by the paper's §10
//! future-work discussion of feature misspecification).
//!
//! Measures missing-track P@10 with features knocked out one at a time,
//! and demonstrates the inverted-track-length pathology in the model-error
//! app (see `ModelErrorFinder::feature_set` docs).
//!
//! `cargo run --release -p loa-bench --bin ablation_features [--fast]`

use fixy_core::prelude::*;
use fixy_core::{Aof, Learner};
use loa_baselines::AdHocAssertions;
use loa_bench::parse_args;
use loa_data::{generate_scene, DatasetProfile};
use loa_eval::metrics::{mean_of, precision_at_k};
use loa_eval::report::{pct_opt, Table};
use loa_eval::resolve::{is_missing_track_hit, is_model_error_hit};

fn main() {
    let options = parse_args();
    let n_train = if options.fast { 3 } else { 6 };
    let n_eval = if options.fast { 6 } else { 16 };

    let mut scene_cfg = DatasetProfile::LyftLike.scene_config();
    if options.fast {
        scene_cfg.world.duration = 6.0;
        scene_cfg.lidar.beam_count = 300;
    }

    // ---- Missing-track app: knock out one feature at a time --------------
    let finder = MissingTrackFinder::default();
    let full = finder.feature_set();
    let train: Vec<_> = (0..n_train)
        .map(|i| generate_scene(&scene_cfg, &format!("ab-train-{i}"), options.seed + i as u64))
        .collect();
    let library = Learner::new().fit(&full, &train).expect("fit");

    let eval_scenes: Vec<_> = (0..n_eval)
        .map(|i| generate_scene(&scene_cfg, &format!("ab-eval-{i}"), options.seed + 700 + i as u64))
        .collect();

    let mut table = Table::new(vec!["Configuration", "P@10 (missing tracks)"]);
    let mut configs: Vec<(String, FeatureSet)> = vec![("full".into(), full.clone())];
    for knock_out in ["volume", "distance", "velocity"] {
        // Disable by replacing the AOF with One: the factor stays (same
        // normalization) but becomes uninformative.
        let mut set = full.clone();
        for bf in &mut set.features {
            if bf.feature.name() == knock_out {
                bf.aof = Aof::One;
            }
        }
        configs.push((format!("without {knock_out}"), set));
    }

    for (name, set) in &configs {
        let per_scene: Vec<Option<f64>> = eval_scenes
            .iter()
            .map(|data| {
                if data.injected.missing_tracks.is_empty() {
                    return None;
                }
                let scene = Scene::assemble(data, &AssemblyConfig::default());
                let engine = ScoreEngine::new(&scene, set, &library).ok()?;
                let mut cands: Vec<(f64, fixy_core::TrackIdx)> = scene
                    .tracks()
                    .iter()
                    .filter_map(|t| engine.score_track(t.idx).score.map(|s| (s, t.idx)))
                    .collect();
                cands.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
                let rel: Vec<bool> = cands
                    .iter()
                    .map(|&(_, t)| is_missing_track_hit(data, &scene, t))
                    .collect();
                precision_at_k(&rel, 10)
            })
            .collect();
        table.row(vec![name.clone(), pct_opt(mean_of(&per_scene))]);
    }
    println!("\nAblation A — Table 2 feature knockouts (missing-track app):\n");
    print!("{}", table.render());

    // ---- Model-error app: the inverted track-length pathology ------------
    let me = ModelErrorFinder::default();
    let me_default_lib = Learner::new().fit(&me.feature_set(), &train).expect("fit");
    let me_tl_lib = Learner::new()
        .fit(&me.feature_set_with_track_length(), &train)
        .expect("fit");

    let mut table = Table::new(vec!["Configuration", "P@10 (model errors)"]);
    for (name, set, lib) in [
        ("default (no track-length factor)", me.feature_set(), &me_default_lib),
        (
            "with inverted track-length",
            me.feature_set_with_track_length(),
            &me_tl_lib,
        ),
    ] {
        let per_scene: Vec<Option<f64>> = eval_scenes
            .iter()
            .map(|data| {
                let scene = Scene::assemble(data, &AssemblyConfig::model_only());
                let excluded = AdHocAssertions::default().flag_all(&scene);
                let engine = ScoreEngine::new(&scene, &set, lib).ok()?;
                let mut cands: Vec<(f64, fixy_core::TrackIdx)> = scene
                    .tracks()
                    .iter()
                    .filter(|t| {
                        let obs = scene.track_obs(t);
                        let n_ex = obs.iter().filter(|o| excluded.contains(o)).count();
                        2 * n_ex <= obs.len()
                    })
                    .filter_map(|t| engine.score_track(t.idx).score.map(|s| (s, t.idx)))
                    .collect();
                cands.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
                let rel: Vec<bool> = cands
                    .iter()
                    .map(|&(_, t)| is_model_error_hit(data, &scene, t))
                    .collect();
                precision_at_k(&rel, 10)
            })
            .collect();
        table.row(vec![name.to_string(), pct_opt(mean_of(&per_scene))]);
    }
    println!("\nAblation B — inverted track-level factors (model-error app):\n");
    print!("{}", table.render());
    println!(
        "\nA single inverted track-level factor adds a near-constant log term\n\
         that the per-factor normalization spreads across long tracks but\n\
         concentrates on short ones — sinking exactly the short inconsistent\n\
         tracks the application hunts."
    );

    // ---- Model-error app: adding the joint motion feature -----------------
    let me_joint_set = {
        let mut set = me.feature_set();
        set.features.insert(
            3,
            fixy_core::BoundFeature::new(
                std::sync::Arc::new(fixy_core::features::MotionVectorFeature),
                Aof::Invert,
            ),
        );
        set
    };
    let me_joint_lib = Learner::new().fit(&me_joint_set, &train).expect("fit");

    let mut table = Table::new(vec!["Configuration", "P@10 (model errors)"]);
    for (name, set, lib) in [
        ("default (marginal features)", me.feature_set(), &me_default_lib),
        (
            "with joint (speed, yaw-rate) KDE",
            me_joint_set.clone(),
            &me_joint_lib,
        ),
    ] {
        let per_scene: Vec<Option<f64>> = eval_scenes
            .iter()
            .map(|data| {
                let scene = Scene::assemble(data, &AssemblyConfig::model_only());
                let excluded = AdHocAssertions::default().flag_all(&scene);
                let engine = ScoreEngine::new(&scene, &set, lib).ok()?;
                let mut cands: Vec<(f64, fixy_core::TrackIdx)> = scene
                    .tracks()
                    .iter()
                    .filter(|t| {
                        let obs = scene.track_obs(t);
                        let n_ex = obs.iter().filter(|o| excluded.contains(o)).count();
                        2 * n_ex <= obs.len()
                    })
                    .filter_map(|t| engine.score_track(t.idx).score.map(|s| (s, t.idx)))
                    .collect();
                cands.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
                let rel: Vec<bool> = cands
                    .iter()
                    .map(|&(_, t)| is_model_error_hit(data, &scene, t))
                    .collect();
                precision_at_k(&rel, 10)
            })
            .collect();
        table.row(vec![name.to_string(), pct_opt(mean_of(&per_scene))]);
    }
    println!("\nAblation C — joint vs marginal motion features (model-error app):\n");
    print!("{}", table.render());
}
