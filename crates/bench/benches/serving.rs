//! Serving-layer benchmarks: what a resident `loa_serve` core sustains.
//!
//! * `serving/interleaved_sessions` — 8 concurrent sessions on one
//!   `AuditService`, frames round-robined in order; divide the median by
//!   the total frame count for frames/sec/core, by 8 for a
//!   sessions/core feel.
//! * `serving/interleaved_sessions_shuffled` — the same load delivered
//!   through a bounded shuffle (late ≤ 3) with periodic duplicates: the
//!   reorder buffer plus duplicate dropping must not change the cost
//!   regime.
//! * `serving/session_churn` — open → few frames → close, 64 sessions
//!   in a row: the engine pool must hold steady-state churn to zero
//!   engine builds (asserted outside the timed loop).
//! * `serving/wire_frame_roundtrip` — encode + envelope + decode of
//!   every frame in a scene: the per-frame protocol tax.
//!
//! Set `FIXY_BENCH_SMOKE=1` for miniature scenes and 3 samples — the CI
//! mode that keeps the bench compiling *and* executing.

use criterion::{criterion_group, criterion_main, Criterion};
use fixy_core::Learner;
use loa_data::{generate_scene, DatasetProfile, SceneData};
use loa_serve::{AuditService, Request, ServeApp, ServeContext, ServiceCfg};
use std::hint::black_box;

fn smoke() -> bool {
    std::env::var_os("FIXY_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn scene_data(name: &str, seed: u64) -> SceneData {
    let mut cfg = DatasetProfile::InternalLike.scene_config();
    if smoke() {
        cfg.world.duration = 3.0;
        cfg.lidar.beam_count = 240;
    }
    generate_scene(&cfg, name, seed)
}

fn context() -> ServeContext {
    let app = ServeApp::MissingTracks;
    let train: Vec<_> = (0..2)
        .map(|i| scene_data(&format!("serve-train-{i}"), 700 + i))
        .collect();
    let library = Learner { assembly: app.assembly() }
        .fit(&app.feature_set(), &train)
        .expect("fit");
    ServeContext::new(app, library).expect("context")
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bounded shuffle: stable sort by `index + jitter`, jitter in
/// `0..=late` — every frame lands within `late` of its slot.
fn delivery_order(n: usize, late: u32, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut keyed: Vec<(u64, usize)> = (0..n)
        .map(|i| (i as u64 + splitmix64(&mut state) % (u64::from(late) + 1), i))
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

fn bench_interleaved_sessions(c: &mut Criterion) {
    let ctx = context();
    let n_sessions = 8usize;
    let scenes: Vec<SceneData> = (0..n_sessions)
        .map(|i| scene_data(&format!("serve-live-{i}"), 800 + i as u64))
        .collect();
    let frames_per = scenes[0].frames.len();

    let mut group = c.benchmark_group("serving");
    group.sample_size(if smoke() { 3 } else { 10 });

    group.bench_function("interleaved_sessions", |b| {
        let mut svc = AuditService::new(&ctx, ServiceCfg::default());
        b.iter(|| {
            for (sid, scene) in scenes.iter().enumerate() {
                svc.open(sid as u32, &scene.id, scene.frame_dt).expect("open");
            }
            for k in 0..frames_per {
                for (sid, scene) in scenes.iter().enumerate() {
                    if let Some(frame) = scene.frames.get(k) {
                        svc.frame(sid as u32, black_box(frame.clone())).expect("frame");
                    }
                }
            }
            let mut acc = 0usize;
            for sid in 0..n_sessions {
                acc += svc.close(sid as u32).expect("close").entries.len();
            }
            black_box(acc)
        })
    });

    group.bench_function("interleaved_sessions_shuffled", |b| {
        let cfg = ServiceCfg { window: 4, ..ServiceCfg::default() };
        let mut svc = AuditService::new(&ctx, cfg);
        let orders: Vec<Vec<usize>> = scenes
            .iter()
            .enumerate()
            .map(|(i, s)| delivery_order(s.frames.len(), 3, 0xfeed + i as u64))
            .collect();
        b.iter(|| {
            for (sid, scene) in scenes.iter().enumerate() {
                svc.open(sid as u32, &scene.id, scene.frame_dt).expect("open");
            }
            for k in 0..frames_per {
                for (sid, scene) in scenes.iter().enumerate() {
                    let Some(&pos) = orders[sid].get(k) else { continue };
                    svc.frame(sid as u32, black_box(scene.frames[pos].clone()))
                        .expect("frame");
                    if k % 4 == 0 {
                        svc.frame(sid as u32, scene.frames[pos].clone()).expect("dup");
                    }
                }
            }
            let mut acc = 0usize;
            for sid in 0..n_sessions {
                acc += svc.close(sid as u32).expect("close").entries.len();
            }
            black_box(acc)
        })
    });

    group.finish();
}

fn bench_session_churn(c: &mut Criterion) {
    let ctx = context();
    let scene = scene_data("serve-churn", 901);
    let head = if smoke() { 4 } else { 10 }.min(scene.frames.len());

    let mut group = c.benchmark_group("serving");
    group.sample_size(if smoke() { 3 } else { 10 });

    let mut svc = AuditService::new(&ctx, ServiceCfg::default());
    group.bench_function("session_churn_64", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for round in 0..64u32 {
                svc.open(round, &scene.id, scene.frame_dt).expect("open");
                for frame in &scene.frames[..head] {
                    svc.frame(round, black_box(frame.clone())).expect("frame");
                }
                acc += svc.close(round).expect("close").stats.frames as usize;
            }
            black_box(acc)
        })
    });
    group.finish();
    assert_eq!(svc.engines_built(), 1, "churn must be absorbed by the engine pool");
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let scene = scene_data("serve-wire", 902);

    let mut group = c.benchmark_group("serving");
    group.sample_size(if smoke() { 3 } else { 10 });

    group.bench_function("wire_frame_roundtrip", |b| {
        let mut buf: Vec<u8> = Vec::new();
        b.iter(|| {
            let mut acc = 0usize;
            for frame in &scene.frames {
                buf.clear();
                let record = loa_ingest::encode_frame_record(black_box(frame));
                loa_serve::protocol::write_request(
                    &mut buf,
                    &Request::Frame { session: 1, record },
                )
                .expect("write");
                let mut cursor = &buf[..];
                match loa_serve::protocol::read_request(&mut cursor).expect("read") {
                    Some(Request::Frame { record, .. }) => {
                        let decoded = loa_ingest::decode_frame_record(&record).expect("decode");
                        acc += decoded.human_labels.len() + decoded.detections.len();
                    }
                    other => panic!("unexpected request: {other:?}"),
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Cold start: library file open → serving context built → session
/// OPENed → first FRAME scored, for each library wire format. This is
/// the latency a fleet pays every time an audit worker spins up; the
/// `.flcb` format exists to collapse its library-load component from a
/// fit-state reconstruction to a bulk copy.
fn bench_cold_start(c: &mut Criterion) {
    let app = ServeApp::MissingTracks;
    let train: Vec<_> = (0..2)
        .map(|i| scene_data(&format!("serve-cold-train-{i}"), 910 + i))
        .collect();
    let library = Learner { assembly: app.assembly() }
        .fit(&app.feature_set(), &train)
        .expect("fit");
    let scene = scene_data("serve-cold", 903);
    let first = scene.frames.first().expect("scene has frames").clone();

    let dir = std::env::temp_dir().join("fixy_bench_cold_start");
    std::fs::create_dir_all(&dir).expect("bench tmp dir");
    let json_path = dir.join("library.json");
    let flcb_path = dir.join("library.flcb");
    std::fs::write(&json_path, serde_json::to_string(&library).expect("serialize"))
        .expect("write json library");
    fixy_core::flcb::write_library_file(&flcb_path, "missing-tracks", &library)
        .expect("write flcb library");

    let cold = |library: fixy_core::FeatureLibrary| -> usize {
        let ctx = ServeContext::new(app, library).expect("context");
        let mut svc = AuditService::new(&ctx, ServiceCfg::default());
        svc.open(0, &scene.id, scene.frame_dt).expect("open");
        svc.frame(0, first.clone()).expect("first frame scored");
        svc.close(0).expect("close").stats.frames as usize
    };
    let cold_json = || {
        let text = std::fs::read_to_string(&json_path).expect("read json library");
        let library: fixy_core::FeatureLibrary =
            serde_json::from_str(&text).expect("parse json library");
        cold(library)
    };
    let cold_flcb = || {
        let (_, library) =
            fixy_core::flcb::read_library_file(&flcb_path).expect("read flcb library");
        cold(library)
    };

    let mut group = c.benchmark_group("serving");
    group.sample_size(if smoke() { 3 } else { 10 });
    group.bench_function("cold_start_to_first_score_json", |b| {
        b.iter(|| black_box(cold_json()))
    });
    group.bench_function("cold_start_to_first_score_flcb", |b| {
        b.iter(|| black_box(cold_flcb()))
    });
    group.finish();

    // The binary path must win cold start outright (minimum-of-5 per
    // path to shrug off scheduler noise) — the shared context/session
    // cost is identical, so any loss means the flcb load regressed.
    let time_min = |f: &dyn Fn() -> usize| {
        (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                black_box(f());
                t.elapsed()
            })
            .min()
            .expect("nonempty")
    };
    let json_t = time_min(&cold_json);
    let flcb_t = time_min(&cold_flcb);
    assert!(
        flcb_t < json_t,
        "flcb cold start must beat JSON: flcb {flcb_t:?} vs json {json_t:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_interleaved_sessions,
    bench_session_churn,
    bench_wire_roundtrip,
    bench_cold_start
);
criterion_main!(benches);
