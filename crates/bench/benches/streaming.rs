//! Streaming-ingest benchmarks: the three pieces of `loa_ingest`.
//!
//! * `streaming/assemble_streamed` vs `assemble_batch` — the full
//!   frame-by-frame path (begin/push/finalize) against the one-shot
//!   engine; the delta is the price of incremental availability (both
//!   run the same staged internals, so it should be ≈0).
//! * `streaming/push_and_snapshot_per_frame` — the live regime: push one
//!   frame, materialize the partial-scene snapshot; divide the median by
//!   the frame count for per-frame latency.
//! * `streaming/fscb_decode_scene` — binary scene loading from disk.
//! * `streaming/json_decode_tree` vs `json_decode_streamed` (short and
//!   full-size scene) — the two JSON decode paths: materialize a
//!   `Value` tree then walk it, vs `from_json_stream` straight from
//!   bytes. Both run on the same streaming lexer; the delta is the
//!   cost of the intermediate tree.
//! * `streaming/rank_corpus_streamed` vs `rank_corpus_buffered` — a
//!   scene-directory rank through `process_stream` + `CorpusSource`
//!   (O(workers) scenes resident) against load-everything + `run`.
//! * `streaming/incremental_rescore_per_frame` vs
//!   `full_rescore_per_frame` — the O(Δ) cached-component path
//!   (`update_snapshot` + `rescore_delta` + cached sweep) against a
//!   from-scratch compile+score of every snapshot, on a short and a
//!   long scene. Divide medians by the frame count for per-frame cost:
//!   the full path grows with scene length, the incremental path stays
//!   flat.
//!
//! * `streaming/obs_recorder_absent_per_frame` vs
//!   `obs_recorder_installed_per_frame` — the incremental hot loop with
//!   `loa_obs` recording off vs on. The delta is the whole cost of the
//!   instrumentation (`bench_obs_overhead` also hard-asserts it stays
//!   under 3% or 2us per frame, so a regression fails the bench run
//!   itself, not just the numbers).
//!
//! Set `FIXY_BENCH_SMOKE=1` to run on a miniature scene with 3 samples —
//! the CI smoke mode that keeps the bench compiling *and* executing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_data::{generate_scene, DatasetProfile, SceneData};
use loa_ingest::{CorpusSource, StreamingAssembler};
use std::hint::black_box;
use std::path::PathBuf;

fn smoke() -> bool {
    std::env::var_os("FIXY_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn scene_data(name: &str, seed: u64) -> SceneData {
    let mut cfg = DatasetProfile::InternalLike.scene_config();
    if smoke() {
        cfg.world.duration = 3.0;
        cfg.lidar.beam_count = 240;
    }
    generate_scene(&cfg, name, seed)
}

fn bench_streamed_assembly(c: &mut Criterion) {
    let data = scene_data("stream-eval", 4242);
    let mut group = c.benchmark_group("streaming");
    group.sample_size(if smoke() { 3 } else { 20 });

    let mut assembler = StreamingAssembler::new(AssemblyConfig::default());
    group.bench_function("assemble_streamed", |b| {
        b.iter(|| {
            let scene = assembler.assemble_streamed(black_box(&data)).expect("stream");
            black_box(scene.n_tracks())
        })
    });

    let mut engine = AssemblyEngine::new(AssemblyConfig::default());
    group.bench_function("assemble_batch", |b| {
        b.iter(|| {
            let scene = engine.assemble(black_box(&data));
            black_box(scene.n_tracks())
        })
    });

    // The live regime: every pushed frame is followed by a partial-scene
    // snapshot (what an online ranker would score).
    group.bench_function("push_and_snapshot_per_frame", |b| {
        b.iter(|| {
            assembler.begin(data.frame_dt);
            let mut acc = 0usize;
            for frame in &data.frames {
                assembler.push_frame(black_box(frame)).expect("push");
                acc += assembler.snapshot().n_tracks();
            }
            let scene = assembler.finalize().expect("finalize");
            black_box((acc, scene.n_tracks()))
        })
    });

    group.finish();
}

fn bench_scene_decode(c: &mut Criterion) {
    let full = scene_data("stream-decode", 77);
    let short = {
        let mut cfg = DatasetProfile::InternalLike.scene_config();
        cfg.world.duration = if smoke() { 1.5 } else { 5.0 };
        if smoke() {
            cfg.lidar.beam_count = 240;
        }
        generate_scene(&cfg, "stream-decode-short", 77)
    };
    let dir = std::env::temp_dir().join("fixy_bench_streaming_decode");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let fscb_path = dir.join("scene.fscb");
    loa_ingest::write_scene(&full, &fscb_path).expect("save fscb");

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);

    group.bench_function("fscb_decode_scene", |b| {
        b.iter(|| {
            let scene = loa_ingest::read_scene(black_box(&fscb_path)).expect("fscb");
            black_box(scene.frames.len())
        })
    });

    // Decode from an in-memory string so both JSON paths measure pure
    // decode, not disk. Historical context for the snapshots: before
    // the streaming lexer, the tree parser's per-character UTF-8
    // re-validation made the full-size decode take ~43.5 s; both paths
    // below run on the linear-time lexer, and the streamed one also
    // skips the intermediate tree.
    for (label, data) in [("short", &short), ("full", &full)] {
        let json = serde_json::to_string(data).expect("serialize scene");
        group.bench_function(BenchmarkId::new("json_decode_tree", label), |b| {
            b.iter(|| {
                let scene: SceneData =
                    serde_json::from_str_via_tree(black_box(&json)).expect("tree decode");
                black_box(scene.frames.len())
            })
        });
        group.bench_function(BenchmarkId::new("json_decode_streamed", label), |b| {
            b.iter(|| {
                let scene: SceneData = serde_json::from_str(black_box(&json)).expect("streamed");
                black_box(scene.frames.len())
            })
        });
    }

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_corpus_rank(c: &mut Criterion) {
    let n_scenes = if smoke() { 2 } else { 4 };
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..2)
        .map(|i| scene_data(&format!("stream-train-{i}"), 500 + i))
        .collect();
    let library = Learner::new().fit(&finder.feature_set(), &train).expect("fit");

    let dir = std::env::temp_dir().join("fixy_bench_streaming_corpus");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let paths: Vec<PathBuf> = (0..n_scenes)
        .map(|i| {
            let data = scene_data(&format!("corpus-{i:02}"), 900 + i as u64);
            let path = dir.join(format!("corpus-{i:02}.fscb"));
            loa_ingest::write_scene(&data, &path).expect("write");
            path
        })
        .collect();

    let mut group = c.benchmark_group("streaming");
    group.sample_size(if smoke() { 3 } else { 10 });

    group.bench_function("rank_corpus_streamed", |b| {
        b.iter(|| {
            let source = CorpusSource::open(black_box(&dir)).expect("corpus");
            let counts = ScenePipeline::new(MissingTrackFinder::default())
                .process_stream(
                    &library,
                    source.into_paths(),
                    |p| loa_ingest::load_scene_auto(&p),
                    |r| r.candidates.len(),
                )
                .expect("stream rank");
            black_box(counts.iter().sum::<usize>())
        })
    });

    group.bench_function("rank_corpus_buffered", |b| {
        b.iter(|| {
            let scenes: Vec<SceneData> = paths
                .iter()
                .map(|p| loa_ingest::read_scene(p).expect("read"))
                .collect();
            let ranked = ScenePipeline::new(MissingTrackFinder::default())
                .run(&library, scenes)
                .expect("buffered rank");
            black_box(ranked.iter().map(|r| r.candidates.len()).sum::<usize>())
        })
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_incremental_rescore(c: &mut Criterion) {
    let finder = MissingTrackFinder::default();
    let features = finder.feature_set();
    let train: Vec<_> = (0..2)
        .map(|i| scene_data(&format!("incr-train-{i}"), 600 + i))
        .collect();
    let library = Learner::new().fit(&features, &train).expect("fit");

    let long = scene_data("incr-long", 4321);
    let short = {
        let mut cfg = DatasetProfile::InternalLike.scene_config();
        cfg.world.duration = if smoke() { 1.5 } else { 5.0 };
        if smoke() {
            cfg.lidar.beam_count = 240;
        }
        generate_scene(&cfg, "incr-short", 4321)
    };

    let mut group = c.benchmark_group("streaming");
    group.sample_size(if smoke() { 3 } else { 10 });

    for (label, data) in [("short", &short), ("long", &long)] {
        // O(Δ): grow the snapshot in place, re-score only what the
        // frame's delta invalidated, sweep from cache.
        group.bench_function(BenchmarkId::new("incremental_rescore_per_frame", label), |b| {
            let mut assembler = StreamingAssembler::new(AssemblyConfig::default());
            let mut scorer = IncrementalScorer::new(&features, &library).expect("scorer");
            b.iter(|| {
                assembler.begin(data.frame_dt);
                scorer.begin();
                let mut scene = Scene::from_parts(vec![], vec![], vec![], data.frame_dt, 0);
                let mut acc = 0usize;
                for frame in &data.frames {
                    assembler.push_frame(black_box(frame)).expect("push");
                    assembler.update_snapshot(&mut scene).expect("update");
                    scorer.rescore_delta(&scene, assembler.last_delta().expect("delta"));
                    acc += scorer.score_all_tracks(&scene).len();
                }
                assembler.finalize().expect("finalize");
                black_box(acc)
            })
        });

        // O(scene): from-scratch snapshot + compile + score every frame —
        // the pre-incremental live path.
        group.bench_function(BenchmarkId::new("full_rescore_per_frame", label), |b| {
            let mut assembler = StreamingAssembler::new(AssemblyConfig::default());
            b.iter(|| {
                assembler.begin(data.frame_dt);
                let mut acc = 0usize;
                for frame in &data.frames {
                    assembler.push_frame(black_box(frame)).expect("push");
                    let snapshot = assembler.snapshot();
                    let engine = ScoreEngine::new(&snapshot, &features, &library).expect("compile");
                    acc += engine.score_all_tracks().len();
                }
                assembler.finalize().expect("finalize");
                black_box(acc)
            })
        });
    }

    group.finish();
}

fn bench_obs_overhead(c: &mut Criterion) {
    let finder = MissingTrackFinder::default();
    let features = finder.feature_set();
    let train: Vec<_> = (0..2)
        .map(|i| scene_data(&format!("obs-train-{i}"), 700 + i))
        .collect();
    let library = Learner::new().fit(&features, &train).expect("fit");
    let data = {
        let mut cfg = DatasetProfile::InternalLike.scene_config();
        cfg.world.duration = if smoke() { 1.5 } else { 5.0 };
        if smoke() {
            cfg.lidar.beam_count = 240;
        }
        generate_scene(&cfg, "obs-overhead", 8901)
    };

    // The instrumented hot loop: push + snapshot + O(Δ) rescore + cached
    // sweep — every `loa_obs` touchpoint on the streaming path fires
    // here (Push/Snapshot/Rescore/Score spans, cache and ingest
    // counters, dirty-set histogram).
    let replay = |assembler: &mut StreamingAssembler, scorer: &mut IncrementalScorer<'_>| {
        assembler.begin(data.frame_dt);
        scorer.begin();
        let mut scene = Scene::from_parts(vec![], vec![], vec![], data.frame_dt, 0);
        let mut acc = 0usize;
        for frame in &data.frames {
            assembler.push_frame(black_box(frame)).expect("push");
            assembler.update_snapshot(&mut scene).expect("update");
            scorer.rescore_delta(&scene, assembler.last_delta().expect("delta"));
            acc += scorer.score_all_tracks(&scene).len();
        }
        assembler.finalize().expect("finalize");
        acc
    };

    let mut assembler = StreamingAssembler::new(AssemblyConfig::default());
    let mut scorer = IncrementalScorer::new(&features, &library).expect("scorer");

    let mut group = c.benchmark_group("streaming");
    group.sample_size(if smoke() { 3 } else { 10 });

    loa_obs::disable_all();
    group.bench_function("obs_recorder_absent_per_frame", |b| {
        b.iter(|| black_box(replay(&mut assembler, &mut scorer)))
    });
    loa_obs::enable_metrics();
    group.bench_function("obs_recorder_installed_per_frame", |b| {
        b.iter(|| black_box(replay(&mut assembler, &mut scorer)))
    });
    loa_obs::disable_all();
    group.finish();

    // Hard gate, not just a snapshot: best-of-K replays with the
    // recorder absent vs installed. Installed must cost <3% — or, for
    // tiny smoke scenes where 3% is below timer noise, <2us/frame.
    let best_of = |assembler: &mut StreamingAssembler, scorer: &mut IncrementalScorer<'_>| {
        let reps = if smoke() { 3 } else { 7 };
        (0..reps)
            .map(|_| {
                let t0 = std::time::Instant::now();
                black_box(replay(assembler, scorer));
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    replay(&mut assembler, &mut scorer); // warm caches/allocations
    loa_obs::disable_all();
    let off = best_of(&mut assembler, &mut scorer);
    loa_obs::enable_metrics();
    let on = best_of(&mut assembler, &mut scorer);
    loa_obs::disable_all();
    let per_frame_overhead_us = (on - off).max(0.0) / data.frames.len() as f64 * 1e6;
    assert!(
        on <= off * 1.03 || per_frame_overhead_us < 2.0,
        "loa_obs instrumentation overhead too high: {:.1}us vs {:.1}us per replay \
         ({per_frame_overhead_us:.2}us per frame)",
        on * 1e6,
        off * 1e6,
    );
}

criterion_group!(
    benches,
    bench_streamed_assembly,
    bench_scene_decode,
    bench_corpus_rank,
    bench_incremental_rescore,
    bench_obs_overhead
);
criterion_main!(benches);
