//! Procedural fuzzer throughput: corpus generation and the full
//! injection-recall conformance run at batch scale.
//!
//! The conformance harness is meant to gate every PR on a 200+-scene
//! corpus, so both halves — composing/injecting scenes and ranking them
//! through the five per-kind pipelines — need to stay cheap. `corpus`
//! isolates generation; `conformance` measures the end-to-end
//! experiment (generation + library fits + five `ScenePipeline` runs +
//! oracle resolution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loa_data::fuzz::ScenarioFuzzer;
use loa_eval::{run_injection_recall, InjectionRecallConfig};
use std::hint::black_box;

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_corpus");
    group.sample_size(10);
    for n_scenes in [50usize, 200] {
        group.bench_with_input(BenchmarkId::new("generate", n_scenes), &n_scenes, |b, &n| {
            let fuzzer = ScenarioFuzzer::new(7);
            b.iter(|| {
                let corpus = fuzzer.corpus(black_box(n));
                let errors: usize = corpus
                    .iter()
                    .map(|s| s.injected.label_error_count() + s.injected.ghost_tracks.len())
                    .sum();
                black_box((corpus.len(), errors))
            })
        });
    }
    group.finish();
}

fn bench_conformance(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_conformance");
    group.sample_size(10);
    for n_scenes in [50usize, 200] {
        group.bench_with_input(BenchmarkId::new("end_to_end", n_scenes), &n_scenes, |b, &n| {
            let config = InjectionRecallConfig { seed: 7, n_scenes: n, top_k: 10, n_train: 6 };
            b.iter(|| {
                let result = run_injection_recall(black_box(&config));
                assert!(result.is_perfect(), "conformance regressed during bench");
                black_box(result.total_injected())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_corpus_generation, bench_conformance);
criterion_main!(benches);
