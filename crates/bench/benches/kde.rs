//! KDE microbenchmarks: fitting and evaluation, exact vs binned — the
//! distribution-learning substrate behind every learned feature.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loa_stats::{BinnedKde, Density1d, Kde1d};
use std::hint::black_box;

fn samples(n: usize) -> Vec<f64> {
    // Deterministic pseudo-random mixture: two modes, like real volume
    // distributions (cars + trucks).
    (0..n)
        .map(|i| {
            let u = ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0;
            if i % 4 == 0 {
                60.0 + u * 25.0
            } else {
                12.0 + u * 6.0
            }
        })
        .collect()
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde_fit");
    for n in [100usize, 1_000, 10_000] {
        let xs = samples(n);
        group.bench_with_input(BenchmarkId::new("exact", n), &xs, |b, xs| {
            b.iter(|| black_box(Kde1d::fit(black_box(xs)).unwrap().bandwidth_value()))
        });
        group.bench_with_input(BenchmarkId::new("binned", n), &xs, |b, xs| {
            b.iter(|| black_box(BinnedKde::fit(black_box(xs)).unwrap().bins()))
        });
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde_eval");
    for n in [100usize, 1_000, 10_000] {
        let xs = samples(n);
        let kde = Kde1d::fit(&xs).unwrap();
        let binned = BinnedKde::from_kde(&kde);
        group.bench_with_input(BenchmarkId::new("exact", n), &kde, |b, kde| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in 0..100 {
                    acc += kde.relative_likelihood(black_box(q as f64));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("binned", n), &binned, |b, binned| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in 0..100 {
                    acc += binned.relative_likelihood(black_box(q as f64));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_eval);
criterion_main!(benches);
