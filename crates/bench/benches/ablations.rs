//! Ablation benchmarks for design choices DESIGN.md calls out:
//!
//! * bandwidth rule and kernel choice (KDE quality knobs → fit/eval cost),
//! * greedy vs Hungarian association inside the tracker,
//! * scoring scope mode (Within vs Touching),
//! * sum-product marginals vs normalized log-score on a track-shaped
//!   graph (the related-work comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loa_assoc::{build_tracks, TrackerConfig};
use loa_geom::Box3;
use loa_graph::{DiscreteFactor, FactorGraph, ScopeMode, SumProduct};
use loa_stats::{BandwidthRule, Density1d, Kde1d, Kernel};
use std::hint::black_box;

fn samples(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f64 / 50.0)
        .collect()
}

fn bench_kernels_and_bandwidths(c: &mut Criterion) {
    let xs = samples(2_000);
    let mut group = c.benchmark_group("ablation_kde_knobs");
    for kernel in [Kernel::Gaussian, Kernel::Epanechnikov, Kernel::Tophat] {
        let kde = Kde1d::fit_with(&xs, kernel, BandwidthRule::Silverman).unwrap();
        group.bench_with_input(BenchmarkId::new("eval_kernel", kernel.name()), &kde, |b, kde| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in 0..200 {
                    acc += kde.density(black_box(q as f64 * 0.1));
                }
                black_box(acc)
            })
        });
    }
    for (name, rule) in [
        ("silverman", BandwidthRule::Silverman),
        ("scott", BandwidthRule::Scott),
        ("fixed", BandwidthRule::Fixed(0.5)),
    ] {
        group.bench_with_input(BenchmarkId::new("fit_rule", name), &rule, |b, rule| {
            b.iter(|| {
                black_box(
                    Kde1d::fit_with(black_box(&xs), Kernel::Gaussian, *rule)
                        .unwrap()
                        .bandwidth_value(),
                )
            })
        });
    }
    group.finish();
}

fn bench_tracker_matchers(c: &mut Criterion) {
    let per_frame: Vec<Vec<Box3>> = (0..100)
        .map(|f| {
            (0..25)
                .map(|o| {
                    Box3::on_ground(
                        5.0 + o as f64 * 8.0 + f as f64 * 0.9,
                        -12.0 + (o % 4) as f64 * 6.0,
                        0.0,
                        4.5,
                        1.9,
                        1.6,
                        0.0,
                    )
                })
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("ablation_tracker");
    for (name, hungarian) in [("greedy", false), ("hungarian", true)] {
        let cfg = TrackerConfig { use_hungarian: hungarian, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("matcher", name), &cfg, |b, cfg| {
            b.iter(|| black_box(build_tracks(black_box(&per_frame), cfg).len()))
        });
    }
    group.finish();
}

fn chain_graph(n: usize) -> (FactorGraph<usize, f64>, Vec<loa_graph::VarId>) {
    let mut g: FactorGraph<usize, f64> = FactorGraph::new();
    let vars: Vec<_> = (0..n).map(|i| g.add_var(i)).collect();
    for &v in &vars {
        g.add_factor(0.6, vec![v]).unwrap();
    }
    for w in vars.windows(2) {
        g.add_factor(0.4, vec![w[0], w[1]]).unwrap();
    }
    (g, vars)
}

fn bench_scope_modes(c: &mut Criterion) {
    let (g, vars) = chain_graph(100);
    let mut group = c.benchmark_group("ablation_scope");
    for (name, mode) in [("within", ScopeMode::Within), ("touching", ScopeMode::Touching)] {
        group.bench_with_input(BenchmarkId::new("score_component", name), &mode, |b, mode| {
            b.iter(|| {
                let score = g.score_component(black_box(&vars), *mode, |&p| p);
                black_box(score.factor_count)
            })
        });
    }
    group.finish();
}

fn bench_sum_product_vs_score(c: &mut Criterion) {
    // A binary chain: sum-product marginals vs the normalized log score
    // used by LOA — cost comparison of exact inference vs scoring.
    let n = 50;
    let mut g: loa_graph::sum_product::DiscreteGraph = FactorGraph::new();
    let vars: Vec<_> = (0..n).map(|_| g.add_var(2)).collect();
    for &v in &vars {
        g.add_factor(DiscreteFactor::new(vec![0.7, 0.3]), vec![v]).unwrap();
    }
    for w in vars.windows(2) {
        g.add_factor(DiscreteFactor::new(vec![0.9, 0.1, 0.1, 0.9]), vec![w[0], w[1]])
            .unwrap();
    }
    let (score_graph, score_vars) = chain_graph(n);

    let mut group = c.benchmark_group("ablation_inference");
    group.sample_size(20);
    group.bench_function("sum_product_marginals", |b| {
        b.iter(|| black_box(SumProduct::marginals(black_box(&g)).unwrap().len()))
    });
    group.bench_function("normalized_log_score", |b| {
        b.iter(|| {
            let s = score_graph.score_component(black_box(&score_vars), ScopeMode::Within, |&p| p);
            black_box(s.score)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels_and_bandwidths,
    bench_tracker_matchers,
    bench_scope_modes,
    bench_sum_product_vs_score
);
criterion_main!(benches);
