//! Association microbenchmarks: bundling, greedy vs Hungarian matching,
//! and track building — the Section 4 substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loa_assoc::{
    build_tracks, bundle_frame, greedy_match, hungarian_match, IouBundler, TrackerConfig,
};
use loa_geom::Box3;
use std::hint::black_box;

fn boxes(n: usize, jitter: f64) -> Vec<Box3> {
    (0..n)
        .map(|i| {
            let u = ((i.wrapping_mul(40503)) % 997) as f64 / 997.0;
            Box3::on_ground(
                5.0 + (i as f64 * 7.3) % 70.0 + u * jitter,
                -20.0 + (i as f64 * 3.7) % 40.0,
                0.0,
                4.5,
                1.9,
                1.6,
                u * 3.0,
            )
        })
        .collect()
}

fn bench_bundling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundling");
    for n in [10usize, 40, 80] {
        let human = boxes(n, 0.0);
        let model = boxes(n, 0.3);
        group.bench_with_input(BenchmarkId::new("bundle_frame", n), &n, |b, _| {
            b.iter(|| {
                let bundles =
                    bundle_frame(&[black_box(&human), black_box(&model)], &IouBundler::default());
                black_box(bundles.len())
            })
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for n in [10usize, 40, 80] {
        let a = boxes(n, 0.0);
        let bxs = boxes(n, 0.4);
        let scores: Vec<Vec<f64>> = a
            .iter()
            .map(|x| bxs.iter().map(|y| loa_geom::iou_bev(x, y)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("greedy", n), &scores, |b, s| {
            b.iter(|| black_box(greedy_match(black_box(s), 0.1).len()))
        });
        group.bench_with_input(BenchmarkId::new("hungarian", n), &scores, |b, s| {
            b.iter(|| black_box(hungarian_match(black_box(s), 0.1).len()))
        });
    }
    group.finish();
}

fn bench_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracking");
    for frames in [50usize, 150] {
        let per_frame: Vec<Vec<Box3>> = (0..frames)
            .map(|f| {
                (0..30)
                    .map(|o| {
                        Box3::on_ground(
                            5.0 + o as f64 * 8.0 + f as f64 * 0.8,
                            -15.0 + (o % 5) as f64 * 6.0,
                            0.0,
                            4.5,
                            1.9,
                            1.6,
                            0.0,
                        )
                    })
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("build_tracks", frames), &per_frame, |b, pf| {
            b.iter(|| black_box(build_tracks(black_box(pf), &TrackerConfig::default()).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bundling, bench_matching, bench_tracking);
criterion_main!(benches);
