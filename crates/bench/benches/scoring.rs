//! Score-path microbenchmarks: the two layers the fast online phase is
//! built from.
//!
//! * `scoring/density_*` — evaluating a learned feature distribution the
//!   exact way (`FittedDistribution`: windowed kernel sums) vs the
//!   prepared way (`PreparedDistribution`: precompiled probability grids,
//!   one lookup + interpolation per query).
//! * `scoring/components_*` — scoring every track of a compiled scene
//!   per-candidate through the generic `score_component` (set rebuilds)
//!   vs the single-sweep `score_all_tracks` over the `ComponentIndex`.
//!
//! Set `FIXY_BENCH_SMOKE=1` to run on a miniature scene with 3 samples —
//! the CI smoke mode that keeps the bench compiling *and* executing.

use criterion::{criterion_group, criterion_main, Criterion};
use fixy_core::prelude::*;
use fixy_core::score::ScoreEngine;
use fixy_core::Learner;
use loa_data::{generate_scene, DatasetProfile, ObjectClass, SceneData};
use loa_graph::ScopeMode;
use std::hint::black_box;

fn smoke() -> bool {
    std::env::var_os("FIXY_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn setup() -> (SceneData, FeatureLibrary, MissingTrackFinder) {
    let mut cfg = DatasetProfile::InternalLike.scene_config();
    if smoke() {
        cfg.world.duration = 3.0;
        cfg.lidar.beam_count = 240;
    }
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..2)
        .map(|i| generate_scene(&cfg, &format!("score-train-{i}"), 42 + i))
        .collect();
    let library = Learner::new().fit(&finder.feature_set(), &train).expect("fit");
    let data = generate_scene(&cfg, "score-eval", 4242);
    (data, library, finder)
}

fn bench_density(c: &mut Criterion) {
    let (_, library, _) = setup();
    let fitted = library.get("volume").expect("volume distribution");
    let prepared = library.get_prepared("volume").expect("prepared volume");
    let queries: Vec<FeatureValue> = (0..256)
        .map(|i| {
            let x = ((i * 2654435761u64) % 9000) as f64 / 100.0;
            FeatureValue::class_conditional(x, ObjectClass::Car)
        })
        .collect();

    let mut group = c.benchmark_group("scoring");
    group.sample_size(if smoke() { 3 } else { 20 });

    group.bench_function("density_exact_256_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in &queries {
                acc += fitted.probability(black_box(q));
            }
            black_box(acc)
        })
    });

    group.bench_function("density_prepared_256_queries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in &queries {
                acc += prepared.probability(black_box(q));
            }
            black_box(acc)
        })
    });

    group.finish();
}

fn bench_component_scoring(c: &mut Criterion) {
    let (data, library, finder) = setup();
    let scene = Scene::assemble(&data, &AssemblyConfig::default());
    let features = finder.feature_set();
    let engine = ScoreEngine::new(&scene, &features, &library).expect("compile");

    let mut group = c.benchmark_group("scoring");
    group.sample_size(if smoke() { 3 } else { 20 });

    group.bench_function("components_per_candidate_generic", |b| {
        b.iter(|| {
            let compiled = engine.compiled();
            let mut scored = 0usize;
            for track in scene.tracks() {
                let obs = scene.track_obs(track);
                let vars = compiled.vars_of(&obs);
                let s = compiled
                    .graph
                    .score_component(&vars, ScopeMode::Within, |info| info.probability);
                if s.score.is_some() {
                    scored += 1;
                }
            }
            black_box(scored)
        })
    });

    group.bench_function("components_single_sweep", |b| {
        b.iter(|| {
            let scored = engine
                .score_all_tracks()
                .into_iter()
                .filter(|(_, s)| s.score.is_some())
                .count();
            black_box(scored)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_density, bench_component_scoring);
criterion_main!(benches);
