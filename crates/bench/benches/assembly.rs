//! Assembly-path microbenchmarks: the three stages `AssemblyEngine` runs
//! per scene, plus the end-to-end path with and without engine reuse.
//!
//! * `assembly/bundle_frames_*` — stage 1, same-frame bundling of every
//!   frame's human+model boxes through the spatially-indexed
//!   `bundle_frame_into` (vs the retained `bundle_frame_brute` reference).
//! * `assembly/build_tracks_*` — stage 2, cross-frame tracking over the
//!   bundle representative boxes through the sparse, grid-pruned
//!   `build_tracks_with` (vs `build_tracks_brute`).
//! * `assembly/materialize_scene` — stage 3, folding membership lists
//!   into the CSR `Scene` arenas (`Scene::from_parts`).
//! * `assembly/assemble_full` / `assemble_engine_reused` — the whole
//!   path: a fresh engine per scene vs one warm engine across scenes (the
//!   `ScenePipeline` worker regime).
//!
//! Set `FIXY_BENCH_SMOKE=1` to run on a miniature scene with 3 samples —
//! the CI smoke mode that keeps the bench compiling *and* executing.

use criterion::{criterion_group, criterion_main, Criterion};
use fixy_core::prelude::*;
use fixy_core::{BundleIdx, ObsIdx};
use loa_assoc::{
    build_tracks_brute, build_tracks_with, bundle_frame_brute, bundle_frame_into, BundleScratch,
    FrameBundles, IouBundler, TrackerScratch,
};
use loa_data::{generate_scene, DatasetProfile, FrameId, SceneData};
use loa_geom::Box3;
use std::hint::black_box;

fn smoke() -> bool {
    std::env::var_os("FIXY_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn setup() -> SceneData {
    let mut cfg = DatasetProfile::InternalLike.scene_config();
    if smoke() {
        cfg.world.duration = 3.0;
        cfg.lidar.beam_count = 240;
    }
    generate_scene(&cfg, "assembly-eval", 4242)
}

/// The per-frame `[human, model]` box lists the bundling stage consumes.
fn frame_sources(data: &SceneData) -> Vec<(Vec<Box3>, Vec<Box3>)> {
    data.frames
        .iter()
        .map(|f| {
            (
                f.human_labels.iter().map(|l| l.bbox).collect(),
                f.detections.iter().map(|d| d.bbox).collect(),
            )
        })
        .collect()
}

/// Stage-2 input: per-frame bundle representative boxes, via a real
/// assembly so the boxes match what the engine tracks over.
fn rep_boxes(data: &SceneData) -> Vec<Vec<Box3>> {
    let scene = Scene::assemble(data, &AssemblyConfig::default());
    let mut reps: Vec<Vec<Box3>> = vec![Vec::new(); data.frames.len()];
    for b in scene.bundles() {
        reps[b.frame.0 as usize].push(scene.bundle_representative(b).bbox);
    }
    reps
}

/// Stage-3 input: the membership lists `from_parts` folds into CSR.
type SceneParts = (Vec<Observation>, Vec<(FrameId, Vec<ObsIdx>)>, Vec<Vec<BundleIdx>>);

fn scene_parts(data: &SceneData) -> SceneParts {
    let scene = Scene::assemble(data, &AssemblyConfig::default());
    let observations = scene.observations().to_vec();
    let bundles = scene
        .bundles()
        .iter()
        .map(|b| (b.frame, scene.bundle_obs(b.idx).to_vec()))
        .collect();
    let tracks = scene
        .tracks()
        .iter()
        .map(|t| scene.track_bundles(t.idx).to_vec())
        .collect();
    (observations, bundles, tracks)
}

fn bench_stages(c: &mut Criterion) {
    let data = setup();
    let sources = frame_sources(&data);
    let reps = rep_boxes(&data);
    let (observations, bundle_parts, track_parts) = scene_parts(&data);

    let mut group = c.benchmark_group("assembly");
    group.sample_size(if smoke() { 3 } else { 20 });

    // ---- Stage 1: bundling ------------------------------------------------
    let bundler = IouBundler::default();
    group.bench_function("bundle_frames_indexed", |b| {
        let mut scratch = BundleScratch::default();
        let mut out = FrameBundles::default();
        b.iter(|| {
            let mut n = 0usize;
            for (human, model) in &sources {
                bundle_frame_into(
                    &[black_box(human), black_box(model)],
                    &bundler,
                    &mut scratch,
                    &mut out,
                );
                n += out.len();
            }
            black_box(n)
        })
    });
    group.bench_function("bundle_frames_brute", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for (human, model) in &sources {
                n += bundle_frame_brute(&[black_box(human), black_box(model)], &bundler).len();
            }
            black_box(n)
        })
    });

    // ---- Stage 2: tracking ------------------------------------------------
    let tracker_cfg = AssemblyConfig::default().tracker;
    group.bench_function("build_tracks_indexed", |b| {
        let mut scratch = TrackerScratch::default();
        b.iter(|| black_box(build_tracks_with(black_box(&reps), &tracker_cfg, &mut scratch).len()))
    });
    group.bench_function("build_tracks_brute", |b| {
        b.iter(|| black_box(build_tracks_brute(black_box(&reps), &tracker_cfg).len()))
    });

    // ---- Stage 3: materialization ------------------------------------------
    group.bench_function("materialize_scene", |b| {
        b.iter(|| {
            let scene = Scene::from_parts(
                black_box(observations.clone()),
                black_box(bundle_parts.clone()),
                black_box(track_parts.clone()),
                data.frame_dt,
                data.frames.len(),
            );
            black_box(scene.n_tracks())
        })
    });

    // ---- End to end ---------------------------------------------------------
    group.bench_function("assemble_full", |b| {
        b.iter(|| {
            let scene = Scene::assemble(black_box(&data), &AssemblyConfig::default());
            black_box(scene.n_tracks())
        })
    });
    group.bench_function("assemble_engine_reused", |b| {
        let mut engine = AssemblyEngine::new(AssemblyConfig::default());
        b.iter(|| {
            let scene = engine.assemble(black_box(&data));
            black_box(scene.n_tracks())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
