//! ScenePipeline batch engine: parallel fan-out vs the sequential
//! reference path on a multi-scene batch.
//!
//! The acceptance bar for the batch engine is >1.5× speedup on a
//! ≥8-scene batch with byte-identical results (determinism is locked in
//! by `tests/pipeline.rs`; this bench demonstrates the speedup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_data::{generate_scene, DatasetProfile, SceneData};
use std::hint::black_box;

fn batch(n: usize, seed: u64) -> Vec<SceneData> {
    let mut cfg = DatasetProfile::LyftLike.scene_config();
    cfg.world.duration = 6.0;
    cfg.lidar.beam_count = 300;
    (0..n)
        .map(|i| generate_scene(&cfg, &format!("bench-pipe-{i:02}"), seed + i as u64))
        .collect()
}

fn library() -> FeatureLibrary {
    let finder = MissingTrackFinder::default();
    let train = batch(2, 7000);
    Learner::new().fit(&finder.feature_set(), &train).expect("fit")
}

fn bench_pipeline(c: &mut Criterion) {
    let lib = library();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    for n_scenes in [8usize, 16] {
        let scenes = batch(n_scenes, 7100);

        group.bench_with_input(BenchmarkId::new("sequential", n_scenes), &scenes, |b, scenes| {
            let pipeline = ScenePipeline::new(MissingTrackFinder::default()).sequential();
            b.iter(|| {
                let merged = pipeline.run_merged(&lib, black_box(scenes.clone())).expect("run");
                black_box(merged.len())
            })
        });

        group.bench_with_input(BenchmarkId::new("parallel", n_scenes), &scenes, |b, scenes| {
            let pipeline = ScenePipeline::new(MissingTrackFinder::default());
            b.iter(|| {
                let merged = pipeline.run_merged(&lib, black_box(scenes.clone())).expect("run");
                black_box(merged.len())
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
