//! Geometry microbenchmarks: oriented IOU is the hot inner loop of
//! association and LIDAR simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use loa_geom::{iou_3d, iou_bev, Box3};
use std::hint::black_box;

fn bench_iou(c: &mut Criterion) {
    let a = Box3::on_ground(10.0, 0.0, 0.0, 4.5, 1.9, 1.6, 0.3);
    let overlapping = Box3::on_ground(10.8, 0.4, 0.0, 4.4, 1.8, 1.6, 0.5);
    let distant = Box3::on_ground(60.0, 20.0, 0.0, 4.5, 1.9, 1.6, 0.0);

    let mut group = c.benchmark_group("iou");
    group.bench_function("bev_overlapping", |b| {
        b.iter(|| black_box(iou_bev(black_box(&a), black_box(&overlapping))))
    });
    group.bench_function("bev_distant_early_reject", |b| {
        b.iter(|| black_box(iou_bev(black_box(&a), black_box(&distant))))
    });
    group.bench_function("volumetric", |b| {
        b.iter(|| black_box(iou_3d(black_box(&a), black_box(&overlapping))))
    });
    group.finish();
}

fn bench_polygon(c: &mut Criterion) {
    let a = Box3::on_ground(0.0, 0.0, 0.0, 4.5, 1.9, 1.6, 0.2).bev_polygon();
    let b_poly = Box3::on_ground(0.8, 0.3, 0.0, 4.5, 1.9, 1.6, 1.0).bev_polygon();
    let mut group = c.benchmark_group("polygon");
    group.bench_function("clip_intersection", |b| {
        b.iter(|| black_box(a.intersect(black_box(&b_poly)).area()))
    });
    group.finish();
}

fn bench_lidar_scan(c: &mut Criterion) {
    let boxes: Vec<Box3> = (0..30)
        .map(|i| {
            Box3::on_ground(
                8.0 + (i as f64 * 6.1) % 60.0,
                -18.0 + (i as f64 * 4.3) % 36.0,
                0.0,
                4.5,
                1.9,
                1.6,
                i as f64 * 0.4,
            )
        })
        .collect();
    let cfg = loa_data::LidarConfig::default();
    let mut group = c.benchmark_group("lidar");
    group.sample_size(30);
    group.bench_function("scan_30_objects_900_beams", |b| {
        b.iter(|| {
            let scan = loa_data::lidar::scan(black_box(&boxes), &cfg, false);
            black_box(scan.visibility.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_iou, bench_polygon, bench_lidar_scan);
criterion_main!(benches);
