//! Section 8.1 runtime benchmark: the end-to-end online phase on a
//! 15-second Internal-like scene (paper bound: < 5 s on one core), plus
//! the phases broken out.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_data::{generate_scene, DatasetProfile, SceneData};
use std::hint::black_box;

fn setup() -> (SceneData, FeatureLibrary, MissingTrackFinder) {
    let cfg = DatasetProfile::InternalLike.scene_config();
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..2)
        .map(|i| generate_scene(&cfg, &format!("bench-train-{i}"), 42 + i))
        .collect();
    let library = Learner::new().fit(&finder.feature_set(), &train).expect("fit");
    let data = generate_scene(&cfg, "bench-eval", 4242);
    (data, library, finder)
}

fn bench_scene_runtime(c: &mut Criterion) {
    let (data, library, finder) = setup();
    let mut group = c.benchmark_group("scene_runtime");
    group.sample_size(20);

    group.bench_function("online_phase_15s_scene", |b| {
        b.iter(|| {
            let scene = Scene::assemble(black_box(&data), &AssemblyConfig::default());
            let ranked = finder.rank(&scene, &library).expect("rank");
            black_box(ranked.len())
        })
    });

    group.bench_function("assemble_only", |b| {
        b.iter(|| {
            let scene = Scene::assemble(black_box(&data), &AssemblyConfig::default());
            black_box(scene.n_tracks())
        })
    });

    let scene = Scene::assemble(&data, &AssemblyConfig::default());
    group.bench_function("score_and_rank_only", |b| {
        b.iter_batched(
            || scene.clone(),
            |scene| {
                let ranked = finder.rank(&scene, &library).expect("rank");
                black_box(ranked.len())
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

fn bench_offline_learning(c: &mut Criterion) {
    let cfg = DatasetProfile::InternalLike.scene_config();
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..2)
        .map(|i| generate_scene(&cfg, &format!("bench-fit-{i}"), 77 + i))
        .collect();
    let mut group = c.benchmark_group("offline");
    group.sample_size(10);
    group.bench_function("learn_distributions_2_scenes", |b| {
        b.iter(|| {
            let library = Learner::new()
                .fit(&finder.feature_set(), black_box(&train))
                .expect("fit");
            black_box(library.len())
        })
    });

    // Library load: deserialize + eager prepared-grid rebuild — the
    // fleet-scale per-app startup cost, and the baseline for a future
    // zero-copy / lazily-prepared on-disk format (see ROADMAP).
    let library = Learner::new().fit(&finder.feature_set(), &train).expect("fit");
    let json = serde_json::to_string(&library).expect("serialize library");
    group.bench_function("library_load", |b| {
        b.iter(|| {
            let library: FeatureLibrary =
                serde_json::from_str(black_box(&json)).expect("deserialize");
            black_box(library.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scene_runtime, bench_offline_learning);
criterion_main!(benches);
