//! Section 8.1 runtime benchmark: the end-to-end online phase on a
//! 15-second Internal-like scene (paper bound: < 5 s on one core), plus
//! the phases broken out.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_data::{generate_scene, DatasetProfile, SceneData};
use std::hint::black_box;

/// `FIXY_BENCH_SMOKE=1` shrinks the workload so CI can execute every
/// bench body without paying full-fidelity scene costs.
fn smoke() -> bool {
    std::env::var_os("FIXY_BENCH_SMOKE").is_some()
}

fn scene_config() -> loa_data::SceneConfig {
    let mut cfg = DatasetProfile::InternalLike.scene_config();
    if smoke() {
        cfg.world.duration = 3.0;
        cfg.lidar.beam_count = 240;
    }
    cfg
}

fn setup() -> (SceneData, FeatureLibrary, MissingTrackFinder) {
    let cfg = scene_config();
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..2)
        .map(|i| generate_scene(&cfg, &format!("bench-train-{i}"), 42 + i))
        .collect();
    let library = Learner::new().fit(&finder.feature_set(), &train).expect("fit");
    let data = generate_scene(&cfg, "bench-eval", 4242);
    (data, library, finder)
}

fn bench_scene_runtime(c: &mut Criterion) {
    let (data, library, finder) = setup();
    let mut group = c.benchmark_group("scene_runtime");
    group.sample_size(if smoke() { 10 } else { 20 });

    group.bench_function("online_phase_15s_scene", |b| {
        b.iter(|| {
            let scene = Scene::assemble(black_box(&data), &AssemblyConfig::default());
            let ranked = finder.rank(&scene, &library).expect("rank");
            black_box(ranked.len())
        })
    });

    group.bench_function("assemble_only", |b| {
        b.iter(|| {
            let scene = Scene::assemble(black_box(&data), &AssemblyConfig::default());
            black_box(scene.n_tracks())
        })
    });

    let scene = Scene::assemble(&data, &AssemblyConfig::default());
    group.bench_function("score_and_rank_only", |b| {
        b.iter_batched(
            || scene.clone(),
            |scene| {
                let ranked = finder.rank(&scene, &library).expect("rank");
                black_box(ranked.len())
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

fn bench_offline_learning(c: &mut Criterion) {
    let cfg = scene_config();
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..2)
        .map(|i| generate_scene(&cfg, &format!("bench-fit-{i}"), 77 + i))
        .collect();
    let mut group = c.benchmark_group("offline");
    group.sample_size(10);
    group.bench_function("learn_distributions_2_scenes", |b| {
        b.iter(|| {
            let library = Learner::new()
                .fit(&finder.feature_set(), black_box(&train))
                .expect("fit");
            black_box(library.len())
        })
    });

    // Library load, per wire format — the fleet-scale per-app startup
    // cost. The v1 JSON path pays a streamed typed parse (no
    // intermediate Value tree since the streaming lexer landed) + eager
    // prepared-grid rebuild (a KDE convolution per distribution); the
    // .flcb path is a bounds-checked bulk copy of the prepared grids,
    // which is the whole point of the binary format.
    let library = Learner::new().fit(&finder.feature_set(), &train).expect("fit");
    let json = serde_json::to_string(&library).expect("serialize library");
    group.bench_function("library_load_json", |b| {
        b.iter(|| {
            let library: FeatureLibrary =
                serde_json::from_str(black_box(&json)).expect("deserialize");
            black_box(library.len())
        })
    });
    let flcb = fixy_core::flcb::encode_library("missing-tracks", &library);
    group.bench_function("library_load_flcb", |b| {
        b.iter(|| {
            let (_, library) = fixy_core::flcb::decode_library(black_box(&flcb)).expect("decode");
            black_box(library.len())
        })
    });
    group.finish();

    // The binary format must actually win, by a wide margin (the
    // recorded snapshots track the full ratio; this guards against the
    // flcb path silently regressing into a refit). Minimum-of-5 keeps
    // the check robust to scheduler noise.
    let time_min = |f: &dyn Fn()| {
        (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed()
            })
            .min()
            .expect("nonempty")
    };
    let json_t = time_min(&|| {
        let lib: FeatureLibrary = serde_json::from_str(&json).expect("deserialize");
        black_box(lib.len());
    });
    let flcb_t = time_min(&|| {
        let (_, lib) = fixy_core::flcb::decode_library(&flcb).expect("decode");
        black_box(lib.len());
    });
    assert!(
        json_t > flcb_t * 5,
        "flcb library load must be far faster than JSON: json {json_t:?} vs flcb {flcb_t:?}"
    );
}

criterion_group!(benches, bench_scene_runtime, bench_offline_learning);
criterion_main!(benches);
