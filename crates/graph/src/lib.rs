//! Factor-graph substrate for the Fixy / Learned Observation Assertions
//! reproduction.
//!
//! Section 2 of the paper: a factor graph is a bipartite graph
//! `G = (X, F, E)` between random variables `X` (observations, in LOA) and
//! factors `F` (feature-distribution instances), with an edge from factor
//! `f_j` to variable `X_i` iff `X_i ∈ S_j` in the factorization
//! `g(X) = Π_j f_j(S_j)`.
//!
//! [`FactorGraph`] is the structure LOA scenes compile into (Section 4.3);
//! [`score`] implements the normalized log-likelihood scoring of Section 6;
//! [`sum_product`] adds exact marginal inference on acyclic graphs — beyond
//! what Fixy's ranking needs, but the natural extension the paper's related
//! work (robot-perception factor graphs) points at, and used by an ablation.

pub mod components;
pub mod delta;
pub mod graph;
pub mod score;
pub mod sum_product;

pub use components::{ComponentId, ComponentIndex};
pub use delta::{DeltaComponentIndex, UnionOutcome};
pub use graph::{FactorGraph, FactorId, GraphError, VarId};
pub use score::{normalized_log_score, ComponentScore, ScopeMode};
pub use sum_product::{DiscreteFactor, SumProduct, SumProductError};
