//! Connected-component index over a factor graph.
//!
//! Scoring candidates (tracks, bundles) against a compiled scene used to
//! rebuild the candidate's factor set from scratch — two `BTreeSet`s per
//! candidate. But under the compilation semantics (Section 4.3) a
//! candidate's observations almost always form exactly one connected
//! component of the graph, and a component's factor set never changes
//! after compilation. [`ComponentIndex`] computes it once per compiled
//! scene — union-find over the factor scopes, then one counting-sort pass
//! into CSR arenas — so scoring a component is a slice lookup plus a fold.

use crate::graph::{FactorGraph, FactorId, VarId};
use serde::{Deserialize, Serialize};

/// Index of a connected component within a [`ComponentIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId(pub usize);

/// Variables and factors of every connected component, in CSR layout.
///
/// Component ids are assigned in ascending order of each component's
/// smallest variable id, so the index is deterministic for a given graph.
/// Within a component, both the variable and the factor lists are sorted
/// ascending.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentIndex {
    /// Component of each variable (indexed by `VarId`).
    comp_of_var: Vec<ComponentId>,
    var_offsets: Vec<usize>,
    var_arena: Vec<VarId>,
    factor_offsets: Vec<usize>,
    factor_arena: Vec<FactorId>,
}

impl ComponentIndex {
    /// Build the index: union-find over factor scopes (`O(E α(V))`), then
    /// counting sorts of variables and factors into the arenas.
    pub fn new<V, F>(graph: &FactorGraph<V, F>) -> Self {
        let n = graph.var_count();
        let mut parent: Vec<usize> = (0..n).collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }

        for f in graph.factor_ids() {
            let scope = graph.scope(f);
            let root = find(&mut parent, scope[0].0);
            for &v in &scope[1..] {
                let r = find(&mut parent, v.0);
                parent[r] = root;
            }
        }

        // Dense component ids in first-seen (= smallest-variable) order.
        let mut comp_of_root: Vec<usize> = vec![usize::MAX; n];
        let mut comp_of_var: Vec<ComponentId> = Vec::with_capacity(n);
        let mut count = 0usize;
        for v in 0..n {
            let root = find(&mut parent, v);
            if comp_of_root[root] == usize::MAX {
                comp_of_root[root] = count;
                count += 1;
            }
            comp_of_var.push(ComponentId(comp_of_root[root]));
        }

        // Counting sort: variables into per-component runs.
        let mut var_offsets = vec![0usize; count + 1];
        for c in &comp_of_var {
            var_offsets[c.0 + 1] += 1;
        }
        for i in 1..=count {
            var_offsets[i] += var_offsets[i - 1];
        }
        let mut cursor = var_offsets.clone();
        let mut var_arena = vec![VarId(0); n];
        for v in 0..n {
            let c = comp_of_var[v].0;
            var_arena[cursor[c]] = VarId(v);
            cursor[c] += 1;
        }

        // Counting sort: factors into per-component runs. A factor's scope
        // lies in exactly one component by construction (its scope edges
        // are what the union-find merged).
        let m = graph.factor_count();
        let mut factor_offsets = vec![0usize; count + 1];
        for f in graph.factor_ids() {
            let c = comp_of_var[graph.scope(f)[0].0].0;
            factor_offsets[c + 1] += 1;
        }
        for i in 1..=count {
            factor_offsets[i] += factor_offsets[i - 1];
        }
        let mut cursor = factor_offsets.clone();
        let mut factor_arena = vec![FactorId(0); m];
        for f in graph.factor_ids() {
            let c = comp_of_var[graph.scope(f)[0].0].0;
            factor_arena[cursor[c]] = f;
            cursor[c] += 1;
        }

        ComponentIndex {
            comp_of_var,
            var_offsets,
            var_arena,
            factor_offsets,
            factor_arena,
        }
    }

    /// Number of connected components.
    pub fn len(&self) -> usize {
        self.var_offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The component a variable belongs to.
    pub fn component_of(&self, v: VarId) -> ComponentId {
        self.comp_of_var[v.0]
    }

    /// The variables of a component, ascending.
    pub fn vars(&self, c: ComponentId) -> &[VarId] {
        &self.var_arena[self.var_offsets[c.0]..self.var_offsets[c.0 + 1]]
    }

    /// The factors of a component, ascending.
    pub fn factors(&self, c: ComponentId) -> &[FactorId] {
        &self.factor_arena[self.factor_offsets[c.0]..self.factor_offsets[c.0 + 1]]
    }

    /// Iterate over component ids.
    pub fn ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        (0..self.len()).map(ComponentId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pseudo_random_graph(n: usize, extra_edges: usize) -> FactorGraph<usize, usize> {
        let mut g: FactorGraph<usize, usize> = FactorGraph::new();
        let vars: Vec<VarId> = (0..n).map(|i| g.add_var(i)).collect();
        for e in 0..extra_edges {
            let a = vars[(e * 7 + 1) % n];
            let b = vars[(e * 13 + 3) % n];
            if a != b {
                g.add_factor(e, vec![a, b]).unwrap();
            }
        }
        g
    }

    #[test]
    fn index_matches_connected_components() {
        let g = pseudo_random_graph(17, 9);
        let index = ComponentIndex::new(&g);
        let comps = g.connected_components();
        assert_eq!(index.len(), comps.len());
        // connected_components reports components in smallest-var order,
        // matching the index's id assignment.
        for (i, comp) in comps.iter().enumerate() {
            assert_eq!(index.vars(ComponentId(i)), comp.as_slice());
            for &v in comp {
                assert_eq!(index.component_of(v), ComponentId(i));
            }
        }
    }

    #[test]
    fn factors_partition_and_match_within_scope() {
        let g = pseudo_random_graph(20, 12);
        let index = ComponentIndex::new(&g);
        let mut seen = vec![false; g.factor_count()];
        for c in index.ids() {
            let vars = index.vars(c);
            for &f in index.factors(c) {
                assert!(!seen[f.0], "factor listed twice");
                seen[f.0] = true;
                for &v in g.scope(f) {
                    assert!(vars.binary_search(&v).is_ok(), "scope var outside component");
                }
            }
            // The component's factor list is exactly its Within factors.
            let within = g.component_factors(vars, crate::ScopeMode::Within);
            assert_eq!(index.factors(c), within.as_slice());
        }
        assert!(seen.iter().all(|&s| s), "factor missing from every component");
    }

    #[test]
    fn empty_and_isolated() {
        let g: FactorGraph<(), ()> = FactorGraph::new();
        let index = ComponentIndex::new(&g);
        assert_eq!(index.len(), 0);
        assert!(index.is_empty());

        let mut g: FactorGraph<u32, ()> = FactorGraph::new();
        let a = g.add_var(0);
        let b = g.add_var(1);
        let index = ComponentIndex::new(&g);
        assert_eq!(index.len(), 2);
        assert_eq!(index.vars(index.component_of(a)), &[a]);
        assert_eq!(index.vars(index.component_of(b)), &[b]);
        assert!(index.factors(index.component_of(a)).is_empty());
    }

    proptest! {
        #[test]
        fn prop_index_partitions_vars_and_factors(
            n in 1usize..24, extra_edges in 0usize..14,
        ) {
            let g = pseudo_random_graph(n, extra_edges);
            let index = ComponentIndex::new(&g);
            let total_vars: usize = index.ids().map(|c| index.vars(c).len()).sum();
            prop_assert_eq!(total_vars, g.var_count());
            let total_factors: usize = index.ids().map(|c| index.factors(c).len()).sum();
            prop_assert_eq!(total_factors, g.factor_count());
            for v in g.var_ids() {
                prop_assert!(index.vars(index.component_of(v)).binary_search(&v).is_ok());
            }
        }
    }
}
