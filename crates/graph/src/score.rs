//! Normalized log-likelihood scoring over factor-graph components.
//!
//! Section 6 of the paper: the score of an observation is the sum of the
//! log of its (AOF-transformed) feature-distribution values; the score of a
//! component *"is the sum of the scores of the observations, normalized by
//! the total number of features that connect to the component"* — so a
//! 10-observation track and a 100-observation track are comparable.

use crate::components::{ComponentId, ComponentIndex};
use crate::graph::{FactorGraph, FactorId, VarId};
use serde::{Deserialize, Serialize};

/// Which factors count as belonging to a component of variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScopeMode {
    /// Factors whose entire scope lies inside the component. This is the
    /// reading consistent with the paper's worked example (a two-
    /// observation track scored by two volume factors and one transition
    /// factor — all fully contained).
    #[default]
    Within,
    /// Factors with at least one edge into the component. Included for the
    /// ablation bench; over-counts boundary transition factors when scoring
    /// single bundles inside a longer track.
    Touching,
}

/// The result of scoring a component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentScore {
    /// Mean log-likelihood: `Σ ln p / n_factors`. `None` when no factor is
    /// attached (no evidence — the component cannot be ranked), or when an
    /// AOF zeroed a factor (`ln 0 = −∞` means "excluded", per Section 7's
    /// applications).
    pub score: Option<f64>,
    /// Number of factors that contributed.
    pub factor_count: usize,
    /// True when some factor evaluated to exactly zero (AOF suppression).
    pub zeroed: bool,
}

impl ComponentScore {
    /// An empty score (no factors).
    pub fn empty() -> Self {
        ComponentScore { score: None, factor_count: 0, zeroed: false }
    }
}

/// Compute `Σ ln(pᵢ) / n` over factor probabilities, with zero handling.
///
/// * An empty iterator yields `ComponentScore::empty()`.
/// * A zero probability marks the component as zeroed and removes it from
///   ranking (`score = None`).
/// * Values are expected in `(0, 1]`; they are not clamped here (the stats
///   crate guarantees the floor).
pub fn normalized_log_score(probabilities: impl IntoIterator<Item = f64>) -> ComponentScore {
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut zeroed = false;
    for p in probabilities {
        count += 1;
        if p <= 0.0 || !p.is_finite() {
            zeroed = true;
        } else {
            sum += p.ln();
        }
    }
    if count == 0 {
        return ComponentScore::empty();
    }
    if zeroed {
        return ComponentScore { score: None, factor_count: count, zeroed: true };
    }
    ComponentScore {
        score: Some(sum / count as f64),
        factor_count: count,
        zeroed: false,
    }
}

impl<V, F> FactorGraph<V, F> {
    /// The factors belonging to the variable set `component` under `mode`,
    /// sorted ascending.
    pub fn component_factors(&self, component: &[VarId], mode: ScopeMode) -> Vec<FactorId> {
        let mut members: Vec<VarId> = component.to_vec();
        members.sort_unstable();
        members.dedup();
        let contains = |w: VarId| members.binary_search(&w).is_ok();
        let mut out: Vec<FactorId> = Vec::new();
        for &v in &members {
            for &f in self.incident_factors(v) {
                let scope = self.scope(f);
                // Count each factor exactly once: at its first scope
                // variable that lies in the component (for `Within`, that
                // is necessarily `scope[0]`).
                let include = match mode {
                    ScopeMode::Touching => scope.iter().copied().find(|&w| contains(w)) == Some(v),
                    ScopeMode::Within => scope[0] == v && scope.iter().all(|&w| contains(w)),
                };
                if include {
                    out.push(f);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Score a component of variables given a probability accessor for
    /// factors (the AOF-transformed feature-distribution value).
    pub fn score_component(
        &self,
        component: &[VarId],
        mode: ScopeMode,
        probability: impl Fn(&F) -> f64,
    ) -> ComponentScore {
        let factors = self.component_factors(component, mode);
        normalized_log_score(factors.iter().map(|&f| probability(self.factor(f))))
    }

    /// Score one whole connected component through a prebuilt
    /// [`ComponentIndex`]: a slice lookup plus a fold, no per-candidate
    /// set building. For a full component `Within` and `Touching` scopes
    /// coincide (no factor crosses a component boundary), so no mode is
    /// taken.
    pub fn score_indexed_component(
        &self,
        index: &ComponentIndex,
        component: ComponentId,
        probability: impl Fn(&F) -> f64,
    ) -> ComponentScore {
        normalized_log_score(index.factors(component).iter().map(|&f| probability(self.factor(f))))
    }

    /// Build the connected-component index for this graph (see
    /// [`ComponentIndex`]).
    pub fn component_index(&self) -> ComponentIndex {
        ComponentIndex::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn worked_example_section_6() {
        // Volumes score 0.37 and 0.39, velocity scores 0.21:
        // (ln 0.37 + ln 0.39 + ln 0.21) / 3 = −1.17 (paper, Section 6).
        let score = normalized_log_score([0.37, 0.39, 0.21]);
        assert_eq!(score.factor_count, 3);
        let s = score.score.unwrap();
        assert!((s - (-1.17)).abs() < 0.005, "got {s}");
    }

    #[test]
    fn empty_component_has_no_score() {
        let score = normalized_log_score(std::iter::empty());
        assert_eq!(score, ComponentScore::empty());
    }

    #[test]
    fn zero_probability_excludes() {
        let score = normalized_log_score([0.5, 0.0, 0.9]);
        assert!(score.zeroed);
        assert_eq!(score.score, None);
        assert_eq!(score.factor_count, 3);
    }

    #[test]
    fn nan_probability_excludes() {
        let score = normalized_log_score([0.5, f64::NAN]);
        assert!(score.zeroed);
    }

    #[test]
    fn normalization_makes_sizes_comparable() {
        // Same per-factor likelihood → same score regardless of length.
        let short = normalized_log_score(vec![0.5; 3]).score.unwrap();
        let long = normalized_log_score(vec![0.5; 30]).score.unwrap();
        assert!((short - long).abs() < 1e-12);
    }

    fn track_graph() -> (FactorGraph<&'static str, f64>, Vec<VarId>) {
        // Two observations with a volume factor each and one transition.
        let mut g = FactorGraph::new();
        let o1 = g.add_var("o1");
        let o2 = g.add_var("o2");
        g.add_factor(0.37, vec![o1]).unwrap();
        g.add_factor(0.39, vec![o2]).unwrap();
        g.add_factor(0.21, vec![o1, o2]).unwrap();
        (g, vec![o1, o2])
    }

    #[test]
    fn graph_component_scoring_matches_worked_example() {
        let (g, vars) = track_graph();
        let score = g.score_component(&vars, ScopeMode::Within, |&p| p);
        assert_eq!(score.factor_count, 3);
        assert!((score.score.unwrap() - (-1.17)).abs() < 0.005);
    }

    #[test]
    fn within_vs_touching_scope() {
        let (g, vars) = track_graph();
        // Score only the first observation: the transition factor's scope is
        // not fully inside, so Within sees 1 factor, Touching sees 2.
        let within = g.component_factors(&vars[..1], ScopeMode::Within);
        let touching = g.component_factors(&vars[..1], ScopeMode::Touching);
        assert_eq!(within.len(), 1);
        assert_eq!(touching.len(), 2);
    }

    #[test]
    fn component_factors_deduplicated() {
        let (g, vars) = track_graph();
        // The transition factor touches both vars but must be listed once.
        let fs = g.component_factors(&vars, ScopeMode::Touching);
        assert_eq!(fs.len(), 3);
    }

    proptest! {
        #[test]
        fn prop_score_bounded_by_extremes(
            ps in proptest::collection::vec(0.001f64..1.0, 1..50),
        ) {
            let score = normalized_log_score(ps.iter().copied()).score.unwrap();
            let min_ln = ps.iter().copied().fold(f64::INFINITY, |a, p: f64| a.min(p.ln()));
            let max_ln = ps.iter().copied().fold(f64::NEG_INFINITY, |a, p: f64| a.max(p.ln()));
            prop_assert!(score >= min_ln - 1e-9);
            prop_assert!(score <= max_ln + 1e-9);
        }

        #[test]
        fn prop_score_monotone_in_each_probability(
            ps in proptest::collection::vec(0.01f64..0.99, 2..20),
            idx in 0usize..19,
        ) {
            let idx = idx % ps.len();
            let base = normalized_log_score(ps.iter().copied()).score.unwrap();
            let mut better = ps.clone();
            better[idx] = (better[idx] * 1.5).min(1.0);
            let improved = normalized_log_score(better).score.unwrap();
            prop_assert!(improved >= base);
        }
    }
}
