//! Delta-aware connected components for streaming graphs.
//!
//! [`ComponentIndex`] is a one-shot build: union-find over every factor
//! scope, then counting sorts into CSR arenas. Under streaming snapshots
//! that build is repeated per frame over the whole prefix — O(scene)
//! work for an O(Δ) change. [`DeltaComponentIndex`] keeps the union-find
//! *persistent*: variables and factor scopes are appended as frames
//! arrive, each union reports whether two existing components merged (so
//! caches keyed by component roots can migrate), and a **dirty set**
//! accumulates the roots whose membership or factor scopes changed since
//! the last [`take_dirty`](DeltaComponentIndex::take_dirty) drain.
//!
//! Roots play the role [`ComponentId`](crate::ComponentId) plays in the
//! batch index: a stable key for "this connected component" — stable
//! until the component merges into another, which the caller observes
//! via [`UnionOutcome::Merged`] and the dirty set.

use crate::graph::VarId;

/// What a [`union`](DeltaComponentIndex::union) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnionOutcome {
    /// Both variables were already in the same component (rooted here).
    Unchanged(VarId),
    /// Two existing components merged: `absorbed` (with `absorbed_size`
    /// members at merge time) was folded into the component now rooted at
    /// `root`. An `absorbed_size` of 1 is a *growth* (a fresh singleton
    /// joined an existing component); larger is a genuine merge.
    Merged { root: VarId, absorbed: VarId, absorbed_size: usize },
}

impl UnionOutcome {
    /// The root of the resulting component.
    pub fn root(self) -> VarId {
        match self {
            UnionOutcome::Unchanged(r) | UnionOutcome::Merged { root: r, .. } => r,
        }
    }
}

/// Persistent union-find over appended variables and factor scopes, with
/// member lists (small-to-large) and a dirty set of changed roots.
#[derive(Debug, Clone, Default)]
pub struct DeltaComponentIndex {
    parent: Vec<u32>,
    /// Member lists, populated only at roots; absorbed roots are drained.
    members: Vec<Vec<VarId>>,
    /// Dirty flag per variable, meaningful only at roots.
    dirty_flag: Vec<bool>,
    /// Roots pushed when marked dirty. Entries may have been absorbed
    /// since; `take_dirty` canonicalizes and dedups through the flags.
    dirty: Vec<VarId>,
}

impl DeltaComponentIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop every variable and component, keeping allocations for reuse
    /// across scenes.
    pub fn clear(&mut self) {
        self.parent.clear();
        self.members.clear();
        self.dirty_flag.clear();
        self.dirty.clear();
    }

    /// Number of variables added so far.
    pub fn var_count(&self) -> usize {
        self.parent.len()
    }

    /// Append one variable as a fresh singleton component and return it.
    /// New singletons are not marked dirty: a component unseen by any
    /// score pass has nothing cached to invalidate.
    pub fn add_var(&mut self) -> VarId {
        let v = VarId(self.parent.len());
        self.parent.push(v.0 as u32);
        self.members.push(vec![v]);
        self.dirty_flag.push(false);
        v
    }

    /// The current root of `v`'s component, with path halving.
    pub fn find(&mut self, v: VarId) -> VarId {
        let mut x = v.0;
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        VarId(x)
    }

    /// Read-only root lookup (no path compression).
    pub fn root_of(&self, v: VarId) -> VarId {
        let mut x = v.0;
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        VarId(x)
    }

    /// Current size of `v`'s component.
    pub fn component_size(&mut self, v: VarId) -> usize {
        let r = self.find(v);
        self.members[r.0].len()
    }

    /// The members of the component rooted at `root` (unordered). Empty
    /// for non-root variables — pass a [`find`](Self::find) result.
    pub fn members_of_root(&self, root: VarId) -> &[VarId] {
        &self.members[root.0]
    }

    /// Union two components (by member count, smaller list moved into the
    /// larger; ties keep the smaller root id for determinism). Does *not*
    /// touch the dirty set — [`union_scope`](Self::union_scope) layers
    /// that on.
    pub fn union(&mut self, a: VarId, b: VarId) -> UnionOutcome {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return UnionOutcome::Unchanged(ra);
        }
        let (win, lose) = if self.members[ra.0].len() > self.members[rb.0].len()
            || (self.members[ra.0].len() == self.members[rb.0].len() && ra.0 < rb.0)
        {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let absorbed_size = self.members[lose.0].len();
        self.parent[lose.0] = win.0 as u32;
        let moved = std::mem::take(&mut self.members[lose.0]);
        self.members[win.0].extend(moved);
        UnionOutcome::Merged { root: win, absorbed: lose, absorbed_size }
    }

    /// Union every variable of a factor scope and mark the resulting root
    /// dirty — the component's factor set changed even when no membership
    /// did. Returns the outcome of the *last structural change* (or
    /// `Unchanged` if the scope was already one component).
    pub fn union_scope(&mut self, scope: &[VarId]) -> UnionOutcome {
        debug_assert!(!scope.is_empty(), "factor scopes are non-empty");
        let mut outcome = UnionOutcome::Unchanged(self.find(scope[0]));
        for &v in &scope[1..] {
            match self.union(scope[0], v) {
                UnionOutcome::Unchanged(_) => {}
                merged => outcome = merged,
            }
        }
        self.mark_dirty(outcome.root());
        outcome
    }

    /// Mark `v`'s component dirty (cached score must be recomputed).
    pub fn mark_dirty(&mut self, v: VarId) {
        let r = self.find(v);
        if !self.dirty_flag[r.0] {
            self.dirty_flag[r.0] = true;
            self.dirty.push(r);
        }
    }

    /// Whether `v`'s component is currently dirty.
    pub fn is_dirty(&mut self, v: VarId) -> bool {
        let r = self.find(v);
        self.dirty_flag[r.0]
    }

    /// Drain the dirty set: the current roots of every component whose
    /// membership or factor scopes changed since the last drain, deduped
    /// (a root absorbed after being marked resolves to its absorber).
    pub fn take_dirty(&mut self) -> Vec<VarId> {
        let mut out = Vec::with_capacity(self.dirty.len());
        let pending = std::mem::take(&mut self.dirty);
        for v in pending {
            let r = self.find(v);
            if self.dirty_flag[r.0] {
                self.dirty_flag[r.0] = false;
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ComponentIndex;
    use crate::graph::FactorGraph;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// Same pseudo-random shape the batch index tests use.
    fn scopes(n: usize, extra_edges: usize) -> Vec<Vec<VarId>> {
        (0..extra_edges)
            .filter_map(|e| {
                let a = (e * 7 + 1) % n;
                let b = (e * 13 + 3) % n;
                (a != b).then(|| vec![VarId(a), VarId(b)])
            })
            .collect()
    }

    /// Feed vars + scopes incrementally; compare the resulting partition
    /// against `ComponentIndex::new` over the equivalent batch graph.
    #[test]
    fn partition_matches_batch_index() {
        let (n, extra) = (17, 9);
        let mut delta = DeltaComponentIndex::new();
        for _ in 0..n {
            delta.add_var();
        }
        let mut g: FactorGraph<usize, usize> = FactorGraph::new();
        let vars: Vec<VarId> = (0..n).map(|i| g.add_var(i)).collect();
        for (e, scope) in scopes(n, extra).into_iter().enumerate() {
            delta.union_scope(&scope);
            g.add_factor(e, scope.iter().map(|v| vars[v.0]).collect()).unwrap();
        }
        let batch = ComponentIndex::new(&g);
        for c in batch.ids() {
            let members = batch.vars(c);
            let root = delta.find(members[0]);
            let mut delta_members: Vec<VarId> = delta.members_of_root(root).to_vec();
            delta_members.sort_unstable();
            assert_eq!(delta_members.as_slice(), members);
            for &v in members {
                assert_eq!(delta.find(v), root);
            }
        }
    }

    #[test]
    fn merge_and_growth_reporting() {
        let mut d = DeltaComponentIndex::new();
        let vars: Vec<VarId> = (0..5).map(|_| d.add_var()).collect();
        // Fresh singleton joins a fresh singleton: absorbed_size 1.
        match d.union(vars[0], vars[1]) {
            UnionOutcome::Merged { absorbed_size: 1, .. } => {}
            other => panic!("expected growth, got {other:?}"),
        }
        assert!(matches!(d.union(vars[0], vars[1]), UnionOutcome::Unchanged(_)));
        // Build a second pair, then merge the two pairs: absorbed_size 2.
        d.union(vars[2], vars[3]);
        match d.union(vars[1], vars[3]) {
            UnionOutcome::Merged { absorbed_size: 2, root, .. } => {
                assert_eq!(d.component_size(root), 4);
            }
            other => panic!("expected merge of two pairs, got {other:?}"),
        }
        // vars[4] untouched.
        assert_eq!(d.component_size(vars[4]), 1);
    }

    #[test]
    fn dirty_set_drains_canonical_roots() {
        let mut d = DeltaComponentIndex::new();
        let vars: Vec<VarId> = (0..6).map(|_| d.add_var()).collect();
        // New singletons are clean.
        assert!(d.take_dirty().is_empty());

        d.union_scope(&[vars[0], vars[1]]);
        d.union_scope(&[vars[2], vars[3]]);
        let dirty: BTreeSet<VarId> = d.take_dirty().into_iter().collect();
        assert_eq!(dirty.len(), 2);
        assert!(dirty.contains(&d.find(vars[0])));
        assert!(dirty.contains(&d.find(vars[2])));
        // Drained: clean until the next change.
        assert!(d.take_dirty().is_empty());

        // Mark both pairs dirty, then merge them before draining: the
        // drain must report the single surviving root, once.
        d.mark_dirty(vars[0]);
        d.mark_dirty(vars[2]);
        d.union_scope(&[vars[1], vars[3]]);
        let dirty = d.take_dirty();
        assert_eq!(dirty, vec![d.find(vars[0])]);
        assert_eq!(d.find(vars[0]), d.find(vars[3]));

        // A factor over an already-joined scope still dirties (the
        // component's factor set changed even though membership did not).
        d.union_scope(&[vars[0], vars[3]]);
        assert_eq!(d.take_dirty().len(), 1);
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut d = DeltaComponentIndex::new();
        let a = d.add_var();
        let b = d.add_var();
        d.union_scope(&[a, b]);
        d.clear();
        assert_eq!(d.var_count(), 0);
        assert!(d.take_dirty().is_empty());
        let a2 = d.add_var();
        assert_eq!(d.component_size(a2), 1);
    }

    /// Incremental feeding matches the batch partition, and dirty roots
    /// exactly cover the touched scopes. Body kept out of the `proptest!`
    /// macro (expansion depth).
    fn check_incremental_matches_batch(n: usize, extra_edges: usize) {
        let mut delta = DeltaComponentIndex::new();
        for _ in 0..n {
            delta.add_var();
        }
        let mut g: FactorGraph<usize, usize> = FactorGraph::new();
        let vars: Vec<VarId> = (0..n).map(|i| g.add_var(i)).collect();
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for (e, scope) in scopes(n, extra_edges).into_iter().enumerate() {
            delta.union_scope(&scope);
            touched.extend(scope.iter().map(|v| v.0));
            g.add_factor(e, scope.iter().map(|v| vars[v.0]).collect()).unwrap();
        }
        let batch = ComponentIndex::new(&g);
        let mut total = 0usize;
        for c in batch.ids() {
            let members = batch.vars(c);
            let root = delta.find(members[0]);
            assert_eq!(delta.members_of_root(root).len(), members.len());
            total += members.len();
        }
        assert_eq!(total, n);
        // Every dirty root is the root of a touched variable.
        let dirty = delta.take_dirty();
        let touched_roots: BTreeSet<VarId> =
            touched.iter().map(|&v| delta.find(VarId(v))).collect();
        for r in dirty {
            assert!(touched_roots.contains(&r));
        }
    }

    proptest! {
        #[test]
        fn prop_incremental_matches_batch(
            n in 1usize..24, extra_edges in 0usize..14,
        ) {
            check_incremental_matches_batch(n, extra_edges);
        }
    }
}
