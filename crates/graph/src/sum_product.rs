//! Exact sum-product (belief propagation) on acyclic factor graphs.
//!
//! Fixy's ranking only needs the normalized log-score of Section 6, but the
//! paper's related-work section positions LOA next to the factor graphs of
//! robot perception, where marginal inference is the point. This module
//! provides exact marginals on trees over discrete variables — used by the
//! `ablations` bench to show that for LOA's graphs (unary and chain factors
//! with fixed evidence) the normalized score ranking and the posterior
//! marginal ranking agree.
//!
//! Variables carry their domain size as the payload; factors carry a
//! row-major table over their scope.

use crate::graph::{FactorGraph, FactorId, VarId};
use serde::{Deserialize, Serialize};

/// A discrete factor: a non-negative table over the factor's scope, laid
/// out row-major (first scope variable is the slowest index).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteFactor {
    pub table: Vec<f64>,
}

impl DiscreteFactor {
    pub fn new(table: Vec<f64>) -> Self {
        DiscreteFactor { table }
    }
}

/// Errors from sum-product inference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SumProductError {
    /// The graph contains a cycle; exact two-pass BP does not apply.
    NotAForest,
    /// A factor table's length does not match its scope's domain sizes.
    BadTable { factor: usize, expected: usize, got: usize },
    /// A factor table contains a negative or non-finite entry.
    InvalidEntry { factor: usize },
    /// A variable has domain size zero.
    EmptyDomain { var: usize },
    /// All configurations have zero probability.
    ZeroPartition,
}

impl std::fmt::Display for SumProductError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SumProductError::NotAForest => write!(f, "factor graph has a cycle"),
            SumProductError::BadTable { factor, expected, got } => {
                write!(f, "factor {factor}: table length {got}, expected {expected}")
            }
            SumProductError::InvalidEntry { factor } => {
                write!(f, "factor {factor}: negative or non-finite table entry")
            }
            SumProductError::EmptyDomain { var } => write!(f, "variable {var} has empty domain"),
            SumProductError::ZeroPartition => write!(f, "all configurations have zero mass"),
        }
    }
}

impl std::error::Error for SumProductError {}

/// Exact sum-product runner.
pub struct SumProduct;

/// The factor-graph type sum-product operates on: variable payloads are
/// domain sizes.
pub type DiscreteGraph = FactorGraph<usize, DiscreteFactor>;

impl SumProduct {
    /// Compute the exact marginal distribution of every variable.
    ///
    /// Runs synchronous message passing for `#nodes` rounds, which reaches
    /// the fixed point on forests; cyclic graphs are rejected up front.
    pub fn marginals(graph: &DiscreteGraph) -> Result<Vec<Vec<f64>>, SumProductError> {
        validate(graph)?;
        if !graph.is_forest() {
            return Err(SumProductError::NotAForest);
        }

        let n_vars = graph.var_count();
        let n_factors = graph.factor_count();

        // Message storage: var→factor and factor→var, indexed by (factor,
        // position-in-scope) so lookups are O(1).
        let mut msg_vf: Vec<Vec<Vec<f64>>> = Vec::with_capacity(n_factors);
        let mut msg_fv: Vec<Vec<Vec<f64>>> = Vec::with_capacity(n_factors);
        for f in graph.factor_ids() {
            let mut per_pos_vf = Vec::new();
            let mut per_pos_fv = Vec::new();
            for &v in graph.scope(f) {
                let k = *graph.var(v);
                per_pos_vf.push(vec![1.0; k]);
                per_pos_fv.push(vec![1.0; k]);
            }
            msg_vf.push(per_pos_vf);
            msg_fv.push(per_pos_fv);
        }

        let rounds = n_vars + n_factors + 2;
        for _ in 0..rounds {
            // Variable → factor messages.
            for f in graph.factor_ids() {
                let scope = graph.scope(f);
                for (pos, &v) in scope.iter().enumerate() {
                    let k = *graph.var(v);
                    let mut m = vec![1.0; k];
                    for &g_id in graph.incident_factors(v) {
                        if g_id == f {
                            continue;
                        }
                        let g_pos = position_in_scope(graph, g_id, v);
                        let incoming = &msg_fv[g_id.0][g_pos];
                        for (mi, &inc) in m.iter_mut().zip(incoming) {
                            *mi *= inc;
                        }
                    }
                    normalize(&mut m);
                    msg_vf[f.0][pos] = m;
                }
            }
            // Factor → variable messages.
            for f in graph.factor_ids() {
                let scope = graph.scope(f);
                let sizes: Vec<usize> = scope.iter().map(|&v| *graph.var(v)).collect();
                let table = &graph.factor(f).table;
                for (pos, &v) in scope.iter().enumerate() {
                    let k = *graph.var(v);
                    let mut m = vec![0.0; k];
                    for_each_assignment(&sizes, |assign, idx| {
                        let mut w = table[idx];
                        if w == 0.0 {
                            return;
                        }
                        for (other_pos, &val) in assign.iter().enumerate() {
                            if other_pos != pos {
                                w *= msg_vf[f.0][other_pos][val];
                            }
                        }
                        m[assign[pos]] += w;
                    });
                    normalize(&mut m);
                    msg_fv[f.0][pos] = m;
                }
            }
        }

        // Beliefs.
        let mut marginals = Vec::with_capacity(n_vars);
        for v in graph.var_ids() {
            let k = *graph.var(v);
            let mut b = vec![1.0; k];
            for &f in graph.incident_factors(v) {
                let pos = position_in_scope(graph, f, v);
                for (bi, &m) in b.iter_mut().zip(&msg_fv[f.0][pos]) {
                    *bi *= m;
                }
            }
            let total: f64 = b.iter().sum();
            if total <= 0.0 {
                return Err(SumProductError::ZeroPartition);
            }
            for bi in &mut b {
                *bi /= total;
            }
            marginals.push(b);
        }
        Ok(marginals)
    }

    /// Brute-force marginals by enumerating every joint assignment.
    /// Exponential; test/verification use only.
    pub fn marginals_brute_force(graph: &DiscreteGraph) -> Result<Vec<Vec<f64>>, SumProductError> {
        validate(graph)?;
        let sizes: Vec<usize> = graph.var_ids().map(|v| *graph.var(v)).collect();
        let mut marginals: Vec<Vec<f64>> = sizes.iter().map(|&k| vec![0.0; k]).collect();
        let mut total = 0.0;
        for_each_assignment(&sizes, |assign, _| {
            let mut w = 1.0;
            for f in graph.factor_ids() {
                let scope = graph.scope(f);
                let f_sizes: Vec<usize> = scope.iter().map(|&v| *graph.var(v)).collect();
                let local: Vec<usize> = scope.iter().map(|&v| assign[v.0]).collect();
                w *= graph.factor(f).table[flat_index(&f_sizes, &local)];
            }
            total += w;
            for (v, &val) in assign.iter().enumerate() {
                marginals[v][val] += w;
            }
        });
        if total <= 0.0 {
            return Err(SumProductError::ZeroPartition);
        }
        for m in &mut marginals {
            for x in m.iter_mut() {
                *x /= total;
            }
        }
        Ok(marginals)
    }
}

fn validate(graph: &DiscreteGraph) -> Result<(), SumProductError> {
    for v in graph.var_ids() {
        if *graph.var(v) == 0 {
            return Err(SumProductError::EmptyDomain { var: v.0 });
        }
    }
    for f in graph.factor_ids() {
        let expected: usize = graph.scope(f).iter().map(|&v| *graph.var(v)).product();
        let table = &graph.factor(f).table;
        if table.len() != expected {
            return Err(SumProductError::BadTable { factor: f.0, expected, got: table.len() });
        }
        if table.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err(SumProductError::InvalidEntry { factor: f.0 });
        }
    }
    Ok(())
}

fn position_in_scope(graph: &DiscreteGraph, f: FactorId, v: VarId) -> usize {
    graph
        .scope(f)
        .iter()
        .position(|&w| w == v)
        .expect("incidence and scope are consistent by construction")
}

fn normalize(m: &mut [f64]) {
    let total: f64 = m.iter().sum();
    if total > 0.0 {
        for x in m.iter_mut() {
            *x /= total;
        }
    }
    // An all-zero message is left as-is: it means the sending subtree has
    // zero mass for every value, and must propagate so the belief stage can
    // report ZeroPartition.
}

/// Row-major flat index for an assignment under mixed-radix `sizes`.
fn flat_index(sizes: &[usize], assign: &[usize]) -> usize {
    let mut idx = 0;
    for (&k, &a) in sizes.iter().zip(assign) {
        idx = idx * k + a;
    }
    idx
}

/// Visit every assignment of the mixed-radix space `sizes`, passing the
/// assignment and its row-major flat index.
fn for_each_assignment(sizes: &[usize], mut visit: impl FnMut(&[usize], usize)) {
    if sizes.contains(&0) {
        return;
    }
    let mut assign = vec![0usize; sizes.len()];
    let total: usize = sizes.iter().product();
    for idx in 0..total {
        visit(&assign, idx);
        // Increment mixed-radix counter (last position fastest).
        for pos in (0..sizes.len()).rev() {
            assign[pos] += 1;
            if assign[pos] < sizes[pos] {
                break;
            }
            assign[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn single_variable_unary_factor() {
        let mut g: DiscreteGraph = FactorGraph::new();
        let v = g.add_var(3);
        g.add_factor(DiscreteFactor::new(vec![1.0, 2.0, 1.0]), vec![v])
            .unwrap();
        let m = SumProduct::marginals(&g).unwrap();
        assert!(close(&m[0], &[0.25, 0.5, 0.25], 1e-9));
    }

    #[test]
    fn chain_matches_brute_force() {
        // v0 - f(v0,v1) - v1 - f(v1,v2) - v2, binary vars with asymmetric
        // unary evidence.
        let mut g: DiscreteGraph = FactorGraph::new();
        let v0 = g.add_var(2);
        let v1 = g.add_var(2);
        let v2 = g.add_var(2);
        g.add_factor(DiscreteFactor::new(vec![0.8, 0.2]), vec![v0]).unwrap();
        g.add_factor(DiscreteFactor::new(vec![0.5, 0.5]), vec![v1]).unwrap();
        g.add_factor(DiscreteFactor::new(vec![0.3, 0.7]), vec![v2]).unwrap();
        // Agreement potential.
        let agree = DiscreteFactor::new(vec![0.9, 0.1, 0.1, 0.9]);
        g.add_factor(agree.clone(), vec![v0, v1]).unwrap();
        g.add_factor(agree, vec![v1, v2]).unwrap();

        let bp = SumProduct::marginals(&g).unwrap();
        let bf = SumProduct::marginals_brute_force(&g).unwrap();
        for (a, b) in bp.iter().zip(&bf) {
            assert!(close(a, b, 1e-9), "bp {a:?} vs brute {b:?}");
        }
    }

    #[test]
    fn ternary_factor_matches_brute_force() {
        let mut g: DiscreteGraph = FactorGraph::new();
        let v0 = g.add_var(2);
        let v1 = g.add_var(3);
        let v2 = g.add_var(2);
        let table: Vec<f64> = (0..12).map(|i| 1.0 + (i as f64 * 0.37) % 1.0).collect();
        g.add_factor(DiscreteFactor::new(table), vec![v0, v1, v2]).unwrap();
        let bp = SumProduct::marginals(&g).unwrap();
        let bf = SumProduct::marginals_brute_force(&g).unwrap();
        for (a, b) in bp.iter().zip(&bf) {
            assert!(close(a, b, 1e-9));
        }
    }

    #[test]
    fn disconnected_components_independent() {
        let mut g: DiscreteGraph = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        g.add_factor(DiscreteFactor::new(vec![1.0, 3.0]), vec![a]).unwrap();
        g.add_factor(DiscreteFactor::new(vec![1.0, 1.0]), vec![b]).unwrap();
        let m = SumProduct::marginals(&g).unwrap();
        assert!(close(&m[0], &[0.25, 0.75], 1e-9));
        assert!(close(&m[1], &[0.5, 0.5], 1e-9));
    }

    #[test]
    fn cycle_rejected() {
        let mut g: DiscreteGraph = FactorGraph::new();
        let vs: Vec<VarId> = (0..3).map(|_| g.add_var(2)).collect();
        let pair = DiscreteFactor::new(vec![1.0, 0.5, 0.5, 1.0]);
        g.add_factor(pair.clone(), vec![vs[0], vs[1]]).unwrap();
        g.add_factor(pair.clone(), vec![vs[1], vs[2]]).unwrap();
        g.add_factor(pair, vec![vs[2], vs[0]]).unwrap();
        assert_eq!(SumProduct::marginals(&g), Err(SumProductError::NotAForest));
    }

    #[test]
    fn bad_table_rejected() {
        let mut g: DiscreteGraph = FactorGraph::new();
        let v = g.add_var(3);
        g.add_factor(DiscreteFactor::new(vec![1.0, 2.0]), vec![v]).unwrap();
        assert!(matches!(
            SumProduct::marginals(&g),
            Err(SumProductError::BadTable { factor: 0, expected: 3, got: 2 })
        ));
    }

    #[test]
    fn negative_entry_rejected() {
        let mut g: DiscreteGraph = FactorGraph::new();
        let v = g.add_var(2);
        g.add_factor(DiscreteFactor::new(vec![1.0, -2.0]), vec![v]).unwrap();
        assert!(matches!(
            SumProduct::marginals(&g),
            Err(SumProductError::InvalidEntry { factor: 0 })
        ));
    }

    #[test]
    fn zero_mass_rejected() {
        let mut g: DiscreteGraph = FactorGraph::new();
        let v = g.add_var(2);
        g.add_factor(DiscreteFactor::new(vec![0.0, 0.0]), vec![v]).unwrap();
        assert_eq!(SumProduct::marginals(&g), Err(SumProductError::ZeroPartition));
    }

    #[test]
    fn empty_domain_rejected() {
        let mut g: DiscreteGraph = FactorGraph::new();
        g.add_var(0);
        assert_eq!(
            SumProduct::marginals(&g),
            Err(SumProductError::EmptyDomain { var: 0 })
        );
    }

    #[test]
    fn flat_index_row_major() {
        assert_eq!(flat_index(&[2, 3], &[0, 0]), 0);
        assert_eq!(flat_index(&[2, 3], &[0, 2]), 2);
        assert_eq!(flat_index(&[2, 3], &[1, 0]), 3);
        assert_eq!(flat_index(&[2, 3], &[1, 2]), 5);
    }

    #[test]
    fn for_each_assignment_visits_all() {
        let mut seen = Vec::new();
        for_each_assignment(&[2, 3], |assign, idx| {
            seen.push((assign.to_vec(), idx));
        });
        assert_eq!(seen.len(), 6);
        // Flat indices are sequential and consistent with flat_index.
        for (i, (assign, idx)) in seen.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(flat_index(&[2, 3], assign), i);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_star_graph_matches_brute_force(
            k in 2usize..4,
            leaves in 1usize..4,
            seed in 0u64..1000,
        ) {
            // Star: one hub variable connected to each leaf via a pairwise
            // factor with pseudo-random entries.
            let mut g: DiscreteGraph = FactorGraph::new();
            let hub = g.add_var(k);
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) + 0.05
            };
            for _ in 0..leaves {
                let leaf = g.add_var(k);
                let table: Vec<f64> = (0..k * k).map(|_| next()).collect();
                g.add_factor(DiscreteFactor::new(table), vec![hub, leaf]).unwrap();
            }
            let bp = SumProduct::marginals(&g).unwrap();
            let bf = SumProduct::marginals_brute_force(&g).unwrap();
            for (a, b) in bp.iter().zip(&bf) {
                prop_assert!(close(a, b, 1e-7), "bp {:?} vs bf {:?}", a, b);
            }
        }

        #[test]
        fn prop_marginals_are_distributions(
            k in 1usize..5, n in 1usize..6, seed in 0u64..1000,
        ) {
            let mut g: DiscreteGraph = FactorGraph::new();
            let mut state = seed.wrapping_add(17);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) + 0.01
            };
            let vars: Vec<VarId> = (0..n).map(|_| g.add_var(k)).collect();
            for &v in &vars {
                let table: Vec<f64> = (0..k).map(|_| next()).collect();
                g.add_factor(DiscreteFactor::new(table), vec![v]).unwrap();
            }
            // Chain factors keep it a tree.
            for w in vars.windows(2) {
                let table: Vec<f64> = (0..k * k).map(|_| next()).collect();
                g.add_factor(DiscreteFactor::new(table), vec![w[0], w[1]]).unwrap();
            }
            let m = SumProduct::marginals(&g).unwrap();
            for dist in m {
                let total: f64 = dist.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                prop_assert!(dist.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
            }
        }
    }
}
