//! The bipartite factor-graph structure.

use serde::{Deserialize, Serialize};

/// Index of a variable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// Index of a factor node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FactorId(pub usize);

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphError {
    /// A factor referenced a variable id that does not exist.
    UnknownVariable(usize),
    /// A factor was added with an empty scope.
    EmptyScope,
    /// A factor's scope listed the same variable twice.
    DuplicateInScope(usize),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownVariable(v) => write!(f, "unknown variable id {v}"),
            GraphError::EmptyScope => write!(f, "factor scope must be non-empty"),
            GraphError::DuplicateInScope(v) => {
                write!(f, "variable {v} appears twice in a factor scope")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A bipartite factor graph with arbitrary variable payloads `V` and factor
/// payloads `F`.
///
/// Bipartiteness is structural: edges only ever connect a factor to a
/// variable, so the invariant cannot be violated by construction.
///
/// Factor scopes live in one flat CSR arena (`scope_offsets` +
/// `scope_arena`) rather than a `Vec<Vec<VarId>>`: scopes are written once
/// at `add_factor` time and then only ever read, so the flat layout trades
/// nothing and keeps the per-factor slices contiguous in one allocation —
/// the scoring sweep walks them cache-linearly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactorGraph<V, F> {
    vars: Vec<V>,
    factors: Vec<F>,
    /// CSR offsets into `scope_arena`: factor `i`'s scope is
    /// `scope_arena[scope_offsets[i]..scope_offsets[i + 1]]`.
    scope_offsets: Vec<usize>,
    /// All factor scopes, concatenated in factor order.
    scope_arena: Vec<VarId>,
    /// Reverse adjacency (variable → incident factors).
    incident: Vec<Vec<FactorId>>,
}

impl<V, F> Default for FactorGraph<V, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, F> FactorGraph<V, F> {
    pub fn new() -> Self {
        FactorGraph {
            vars: Vec::new(),
            factors: Vec::new(),
            scope_offsets: vec![0],
            scope_arena: Vec::new(),
            incident: Vec::new(),
        }
    }

    /// Pre-allocate for an expected node count.
    pub fn with_capacity(vars: usize, factors: usize) -> Self {
        let mut scope_offsets = Vec::with_capacity(factors + 1);
        scope_offsets.push(0);
        FactorGraph {
            vars: Vec::with_capacity(vars),
            factors: Vec::with_capacity(factors),
            scope_offsets,
            scope_arena: Vec::with_capacity(2 * factors),
            incident: Vec::with_capacity(vars),
        }
    }

    /// Add a variable node, returning its id.
    pub fn add_var(&mut self, payload: V) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(payload);
        self.incident.push(Vec::new());
        id
    }

    /// Add a factor node with the given scope, returning its id.
    ///
    /// The scope must be non-empty, reference existing variables, and not
    /// repeat a variable.
    pub fn add_factor(&mut self, payload: F, scope: Vec<VarId>) -> Result<FactorId, GraphError> {
        self.add_factor_from_slice(payload, &scope)
    }

    /// [`add_factor`](Self::add_factor) without requiring an owned scope —
    /// the scope is copied straight into the CSR arena.
    pub fn add_factor_from_slice(
        &mut self,
        payload: F,
        scope: &[VarId],
    ) -> Result<FactorId, GraphError> {
        if scope.is_empty() {
            return Err(GraphError::EmptyScope);
        }
        for (i, v) in scope.iter().enumerate() {
            if v.0 >= self.vars.len() {
                return Err(GraphError::UnknownVariable(v.0));
            }
            if scope[..i].contains(v) {
                return Err(GraphError::DuplicateInScope(v.0));
            }
        }
        let id = FactorId(self.factors.len());
        self.factors.push(payload);
        for v in scope {
            self.incident[v.0].push(id);
        }
        self.scope_arena.extend_from_slice(scope);
        self.scope_offsets.push(self.scope_arena.len());
        Ok(id)
    }

    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    pub fn var(&self, id: VarId) -> &V {
        &self.vars[id.0]
    }

    pub fn var_mut(&mut self, id: VarId) -> &mut V {
        &mut self.vars[id.0]
    }

    pub fn factor(&self, id: FactorId) -> &F {
        &self.factors[id.0]
    }

    pub fn factor_mut(&mut self, id: FactorId) -> &mut F {
        &mut self.factors[id.0]
    }

    /// The variables a factor touches.
    pub fn scope(&self, id: FactorId) -> &[VarId] {
        &self.scope_arena[self.scope_offsets[id.0]..self.scope_offsets[id.0 + 1]]
    }

    /// The factors incident to a variable.
    pub fn incident_factors(&self, id: VarId) -> &[FactorId] {
        &self.incident[id.0]
    }

    /// Degree of a variable (number of incident factors).
    pub fn var_degree(&self, id: VarId) -> usize {
        self.incident[id.0].len()
    }

    /// Iterate over variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId)
    }

    /// Iterate over factor ids.
    pub fn factor_ids(&self) -> impl Iterator<Item = FactorId> + '_ {
        (0..self.factors.len()).map(FactorId)
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.scope_arena.len()
    }

    /// Connected components over the bipartite graph, each reported as the
    /// set of variable ids it contains (sorted). Isolated variables form
    /// singleton components.
    pub fn connected_components(&self) -> Vec<Vec<VarId>> {
        let n = self.vars.len();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            stack.push(VarId(start));
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &f in &self.incident[v.0] {
                    for &w in self.scope(f) {
                        if !seen[w.0] {
                            seen[w.0] = true;
                            stack.push(w);
                        }
                    }
                }
            }
            comp.sort();
            components.push(comp);
        }
        components
    }

    /// True when the bipartite graph is acyclic (a forest), the
    /// precondition for exact sum-product.
    pub fn is_forest(&self) -> bool {
        // A bipartite graph is a forest iff every connected component
        // satisfies nodes = edges + 1 (counting both var and factor nodes).
        let components = self.connected_components();
        for comp in &components {
            let mut factor_set = std::collections::BTreeSet::new();
            for &v in comp {
                factor_set.extend(self.incident[v.0].iter().copied());
            }
            let nodes = comp.len() + factor_set.len();
            let edges: usize = factor_set.iter().map(|&f| self.scope(f).len()).sum();
            if nodes != edges + 1 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(n_vars: usize) -> FactorGraph<usize, &'static str> {
        // v0 - f01 - v1 - f12 - v2 ... plus a unary factor per variable.
        let mut g = FactorGraph::new();
        let vars: Vec<VarId> = (0..n_vars).map(|i| g.add_var(i)).collect();
        for &v in &vars {
            g.add_factor("unary", vec![v]).unwrap();
        }
        for w in vars.windows(2) {
            g.add_factor("pair", vec![w[0], w[1]]).unwrap();
        }
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = chain(4);
        assert_eq!(g.var_count(), 4);
        assert_eq!(g.factor_count(), 7); // 4 unary + 3 pairwise
        assert_eq!(g.edge_count(), 4 + 6);
    }

    #[test]
    fn scope_and_incidence_are_consistent() {
        let g = chain(3);
        for f in g.factor_ids() {
            for &v in g.scope(f) {
                assert!(g.incident_factors(v).contains(&f));
            }
        }
        for v in g.var_ids() {
            for &f in g.incident_factors(v) {
                assert!(g.scope(f).contains(&v));
            }
        }
    }

    #[test]
    fn add_factor_validation() {
        let mut g: FactorGraph<(), ()> = FactorGraph::new();
        let v = g.add_var(());
        assert_eq!(g.add_factor((), vec![]), Err(GraphError::EmptyScope));
        assert_eq!(g.add_factor((), vec![VarId(7)]), Err(GraphError::UnknownVariable(7)));
        assert_eq!(g.add_factor((), vec![v, v]), Err(GraphError::DuplicateInScope(0)));
        assert!(g.add_factor((), vec![v]).is_ok());
    }

    #[test]
    fn var_degree_counts_factors() {
        let g = chain(3);
        // Middle variable: 1 unary + 2 pairwise.
        assert_eq!(g.var_degree(VarId(1)), 3);
        assert_eq!(g.var_degree(VarId(0)), 2);
    }

    #[test]
    fn connected_components_split() {
        let mut g: FactorGraph<u32, ()> = FactorGraph::new();
        let a = g.add_var(0);
        let b = g.add_var(1);
        let c = g.add_var(2);
        let d = g.add_var(3); // isolated
        g.add_factor((), vec![a, b]).unwrap();
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![a, b]));
        assert!(comps.contains(&vec![c]));
        assert!(comps.contains(&vec![d]));
    }

    #[test]
    fn chain_is_forest_triangle_is_not() {
        assert!(chain(5).is_forest());

        let mut g: FactorGraph<(), ()> = FactorGraph::new();
        let a = g.add_var(());
        let b = g.add_var(());
        let c = g.add_var(());
        g.add_factor((), vec![a, b]).unwrap();
        g.add_factor((), vec![b, c]).unwrap();
        g.add_factor((), vec![c, a]).unwrap();
        assert!(!g.is_forest());
    }

    #[test]
    fn payload_access() {
        let mut g: FactorGraph<String, f64> = FactorGraph::new();
        let v = g.add_var("obs".into());
        let f = g.add_factor(0.5, vec![v]).unwrap();
        assert_eq!(g.var(v), "obs");
        assert_eq!(*g.factor(f), 0.5);
        *g.factor_mut(f) = 0.7;
        assert_eq!(*g.factor(f), 0.7);
        g.var_mut(v).push_str("ervation");
        assert_eq!(g.var(v), "observation");
    }

    #[test]
    fn empty_graph() {
        let g: FactorGraph<(), ()> = FactorGraph::new();
        assert_eq!(g.var_count(), 0);
        assert_eq!(g.connected_components().len(), 0);
        assert!(g.is_forest());
    }

    proptest! {
        #[test]
        fn prop_components_partition_vars(n in 1usize..20, extra_edges in 0usize..10) {
            let mut g: FactorGraph<usize, usize> = FactorGraph::new();
            let vars: Vec<VarId> = (0..n).map(|i| g.add_var(i)).collect();
            // Pseudo-random pairwise factors.
            for e in 0..extra_edges {
                let a = vars[(e * 7 + 1) % n];
                let b = vars[(e * 13 + 3) % n];
                if a != b {
                    g.add_factor(e, vec![a, b]).unwrap();
                }
            }
            let comps = g.connected_components();
            let total: usize = comps.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
            // No var appears in two components.
            let mut seen = std::collections::BTreeSet::new();
            for comp in &comps {
                for v in comp {
                    prop_assert!(seen.insert(*v));
                }
            }
        }
    }
}
