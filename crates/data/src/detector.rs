//! LIDAR 3D-detection model simulator.
//!
//! Stands in for the paper's PointPillars/CBGS detectors. What matters to
//! Fixy is the detector's *output error taxonomy*, which this simulator
//! reproduces structurally:
//!
//! * detection probability driven by simulated LIDAR return counts (so
//!   distance and occlusion shape misses, as with real detectors),
//! * localization / extent / yaw noise, with occasional gross errors,
//! * confidence that is well calibrated for the internal-like profile and
//!   poorly calibrated for the Lyft-like profile (the paper: *"our internal
//!   model was trained on already audited data … results in more calibrated
//!   model predictions"*),
//! * **clutter** false positives lasting 1–2 frames (caught by the
//!   appear/flicker ad-hoc assertions),
//! * **duplicate boxes** on real objects (caught by the multibox
//!   assertion),
//! * **persistent ghosts**: multi-frame spurious tracks with inconsistent
//!   geometry — contiguous and long enough to evade the ad-hoc assertions;
//!   only unlikely feature values give them away (Section 8.4, Figure 9),
//! * class confusion between confusable classes.

use crate::class::ObjectClass;
use crate::types::{Detection, DetectionProvenance, Frame, FrameId, GhostId};
use loa_geom::{normalize_angle, Box3, Size3, Vec2, Vec3};
use rand::prelude::*;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Detector behavior parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorProfile {
    /// Asymptotic detection probability for a richly-observed object.
    pub base_detect_prob: f64,
    /// LIDAR-return half-life of the detection curve:
    /// `p = base · (1 − exp(−points / halflife))`.
    pub point_halflife: f64,
    /// Center noise (m), per axis.
    pub center_noise_std: f64,
    /// Relative extent noise.
    pub size_noise_rel_std: f64,
    /// Yaw noise (rad).
    pub yaw_noise_std: f64,
    /// Probability of a gross localization error on a true detection
    /// (center off by 1.5–3 m, extents off by 1.5–2×).
    pub gross_loc_error_rate: f64,
    /// Probability that the detector *consistently* misclassifies a given
    /// object for the whole scene (a trained-in confusion — the
    /// classification errors of Section 8.4).
    pub track_confusion_rate: f64,
    /// Probability of a one-off per-frame class flip.
    pub class_confusion_rate: f64,
    /// Confidence calibration weight in `[0, 1]`: 1 = confidence equals
    /// detection quality, 0 = confidence is uniform noise.
    pub confidence_calibration: f64,
    /// Additive confidence noise std.
    pub confidence_noise_std: f64,
    /// Mean/std of the low-confidence bulk of ghost and clutter
    /// confidences.
    pub ghost_confidence_mean: f64,
    pub ghost_confidence_std: f64,
    /// Fraction of persistent ghosts drawn from a *high*-confidence mode
    /// (~0.85): trained-in failure modes far from the decision boundary
    /// (the paper found errors at up to 95% confidence).
    pub ghost_high_conf_fraction: f64,
    /// Expected clutter false positives per frame.
    pub clutter_rate_per_frame: f64,
    /// Expected persistent ghost tracks per scene.
    pub persistent_ghosts_per_scene: f64,
    /// Ghost track length bounds (frames).
    pub ghost_min_frames: u32,
    pub ghost_max_frames: u32,
    /// Probability of emitting a duplicate box alongside a true detection.
    pub duplicate_rate: f64,
}

impl DetectorProfile {
    /// Public-model profile (trained on noisy Lyft-like labels): more
    /// ghosts, duplicates, and a poorly calibrated confidence head.
    pub fn lyft_like() -> Self {
        DetectorProfile {
            base_detect_prob: 0.92,
            point_halflife: 18.0,
            center_noise_std: 0.18,
            size_noise_rel_std: 0.06,
            yaw_noise_std: 0.05,
            gross_loc_error_rate: 0.004,
            track_confusion_rate: 0.05,
            class_confusion_rate: 0.015,
            confidence_calibration: 0.25,
            confidence_noise_std: 0.25,
            // Bimodal ghost confidence: a low bulk (so confidence ordering
            // keeps some signal for Table 3) plus a high-confidence tail
            // that uncertainty sampling structurally misses (Section 8.4).
            ghost_confidence_mean: 0.32,
            ghost_confidence_std: 0.10,
            ghost_high_conf_fraction: 0.30,
            clutter_rate_per_frame: 0.35,
            persistent_ghosts_per_scene: 7.0,
            ghost_min_frames: 4,
            ghost_max_frames: 12,
            duplicate_rate: 0.01,
        }
    }

    /// Internal-model profile (trained on audited data): fewer false
    /// positives, calibrated confidence.
    pub fn internal_like() -> Self {
        DetectorProfile {
            base_detect_prob: 0.96,
            point_halflife: 12.0,
            center_noise_std: 0.10,
            size_noise_rel_std: 0.04,
            yaw_noise_std: 0.03,
            gross_loc_error_rate: 0.002,
            track_confusion_rate: 0.015,
            class_confusion_rate: 0.008,
            confidence_calibration: 0.85,
            confidence_noise_std: 0.06,
            ghost_confidence_mean: 0.28,
            ghost_confidence_std: 0.12,
            ghost_high_conf_fraction: 0.05,
            clutter_rate_per_frame: 0.15,
            persistent_ghosts_per_scene: 4.0,
            ghost_min_frames: 4,
            ghost_max_frames: 10,
            duplicate_rate: 0.005,
        }
    }

    /// Detection probability for an object with this many LIDAR returns.
    pub fn detect_prob(&self, points: u32) -> f64 {
        self.base_detect_prob * (1.0 - (-(points as f64) / self.point_halflife).exp())
    }
}

/// The detector's audit record: ghost tracks it injected.
#[derive(Debug, Default)]
pub struct DetectorOutcome {
    pub ghost_tracks: Vec<(GhostId, Vec<FrameId>)>,
}

/// Run the simulated detector over a scene's frames, writing
/// `frame.detections`.
pub fn run_detector(
    frames: &mut [Frame],
    profile: &DetectorProfile,
    rng: &mut impl Rng,
) -> DetectorOutcome {
    let mut outcome = DetectorOutcome::default();
    let n_frames = frames.len();
    if n_frames == 0 {
        return outcome;
    }

    // --- Sticky per-track class confusions ---------------------------------
    // A detector trained on noisy data misclassifies some objects
    // *consistently*; decide those up front.
    let mut sticky_class: std::collections::BTreeMap<crate::types::TrackId, ObjectClass> =
        Default::default();
    {
        let mut seen = std::collections::BTreeSet::new();
        for frame in frames.iter() {
            for g in &frame.gt {
                if seen.insert(g.track) && rng.gen_bool(profile.track_confusion_rate) {
                    let opts = g.class.confusable_with();
                    if !opts.is_empty() {
                        sticky_class.insert(g.track, opts[rng.gen_range(0..opts.len())]);
                    }
                }
            }
        }
    }

    // --- True-object detections, duplicates --------------------------------
    for frame in frames.iter_mut() {
        let mut detections = Vec::new();
        for g in &frame.gt {
            let range = g.bbox.ground_distance_to_origin();
            if range > 85.0 || g.lidar_points == 0 {
                continue;
            }
            let quality = 1.0 - (-(g.lidar_points as f64) / profile.point_halflife).exp();
            if !rng.gen_bool((profile.base_detect_prob * quality).clamp(0.0, 1.0)) {
                continue;
            }
            let gross = rng.gen_bool(profile.gross_loc_error_rate);
            let bbox = noisy_box(&g.bbox, profile, gross, rng);
            let class = if let Some(&swapped) = sticky_class.get(&g.track) {
                swapped
            } else if rng.gen_bool(profile.class_confusion_rate) {
                let opts = g.class.confusable_with();
                if opts.is_empty() {
                    g.class
                } else {
                    opts[rng.gen_range(0..opts.len())]
                }
            } else {
                g.class
            };
            let confidence = true_confidence(quality, profile, rng);
            detections.push(Detection {
                bbox,
                class,
                confidence,
                provenance: DetectionProvenance::TrueObject(g.track),
                class_correct: class == g.class,
                localization_error: gross,
            });
            if rng.gen_bool(profile.duplicate_rate) {
                // A slightly shifted second box on the same object;
                // occasionally a third (the multibox assertion's target).
                let n_extra = if rng.gen_bool(0.3) { 2 } else { 1 };
                for _ in 0..n_extra {
                    let dup_box = noisy_box(&g.bbox, profile, false, rng).translated(Vec3::new(
                        rng.gen_range(-0.6..0.6),
                        rng.gen_range(-0.6..0.6),
                        0.0,
                    ));
                    detections.push(Detection {
                        bbox: dup_box,
                        class,
                        confidence: confidence * rng.gen_range(0.5..0.9),
                        provenance: DetectionProvenance::Duplicate(g.track),
                        class_correct: true,
                        localization_error: false,
                    });
                }
            }
        }
        frame.detections = detections;
    }

    // --- Clutter (1–2 frame false positives) -------------------------------
    let expected_clutter = profile.clutter_rate_per_frame * n_frames as f64;
    let n_clutter = sample_count(expected_clutter, rng);
    for _ in 0..n_clutter {
        let start = rng.gen_range(0..n_frames);
        let span = if rng.gen_bool(0.35) { 2 } else { 1 };
        let class = random_class(rng);
        let pos = random_position(rng);
        for k in 0..span {
            let idx = start + k;
            if idx >= n_frames {
                break;
            }
            let bbox = clutter_box(class, pos, rng);
            frames[idx].detections.push(Detection {
                bbox,
                class,
                confidence: ghost_confidence(profile, rng),
                provenance: DetectionProvenance::Clutter,
                class_correct: true,
                localization_error: false,
            });
        }
    }

    // --- Persistent ghosts (Section 8.4 targets) ----------------------------
    let n_ghosts = sample_count(profile.persistent_ghosts_per_scene, rng);
    for ghost_idx in 0..n_ghosts {
        let ghost = GhostId(ghost_idx as u32);
        let span = rng
            .gen_range(profile.ghost_min_frames..=profile.ghost_max_frames)
            .min(n_frames as u32)
            .max(1) as usize;
        let start = rng.gen_range(0..n_frames.saturating_sub(span).max(1));
        let class = random_class(rng);
        let (ml, mw, mh) = class.mean_dims();
        // A stable per-ghost confidence: low bulk or high-confidence tail.
        let base_conf = if rng.gen_bool(profile.ghost_high_conf_fraction) {
            rng.gen_range(0.78..0.95)
        } else {
            (profile.ghost_confidence_mean
                + rng.gen_range(-1.0..1.5) * profile.ghost_confidence_std)
                .clamp(0.1, 0.95)
        };
        // The ghost's base extent is clearly implausible for its class:
        // either squashed or blown up. Per-frame jitter on top makes the
        // volume inconsistent frame to frame.
        let base_scale =
            if rng.gen_bool(0.5) { rng.gen_range(0.40..0.62) } else { rng.gen_range(1.5..2.3) };
        let mut pos = random_position(rng);
        let mut yaw = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let mut frames_hit = Vec::new();
        for k in 0..span {
            let idx = start + k;
            if idx >= n_frames {
                break;
            }
            // Erratic but overlapping geometry (Figure 9): drift is a
            // fraction of the box length so consecutive boxes still
            // overlap and form a track, while extents and yaw wobble in a
            // physically implausible way.
            let scale = base_scale * rng.gen_range(0.82..1.22);
            let length = (ml * scale).max(0.3);
            let step = rng.gen_range(0.15..0.40) * length;
            let dir = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            pos += Vec2::new(dir.cos(), dir.sin()) * step;
            yaw = normalize_angle(yaw + rng.gen_range(-0.3..0.3));
            let bbox = Box3::on_ground(
                pos.x,
                pos.y,
                0.0,
                length,
                (mw * scale * rng.gen_range(0.85..1.2)).max(0.3),
                (mh * rng.gen_range(0.7..1.4)).max(0.3),
                yaw,
            );
            frames[idx].detections.push(Detection {
                bbox,
                class,
                confidence: (base_conf + rng.gen_range(-0.05..0.05)).clamp(0.05, 0.99),
                provenance: DetectionProvenance::PersistentGhost(ghost),
                class_correct: true,
                localization_error: false,
            });
            frames_hit.push(FrameId(idx as u32));
        }
        if !frames_hit.is_empty() {
            outcome.ghost_tracks.push((ghost, frames_hit));
        }
    }

    outcome
}

fn noisy_box(gt: &Box3, profile: &DetectorProfile, gross: bool, rng: &mut impl Rng) -> Box3 {
    let center_noise = Normal::new(0.0, profile.center_noise_std.max(1e-9)).expect("positive std");
    let size_noise = Normal::new(1.0, profile.size_noise_rel_std.max(1e-9)).expect("positive std");
    let yaw_noise = Normal::new(0.0, profile.yaw_noise_std.max(1e-9)).expect("positive std");

    let (mut dx, mut dy) = (center_noise.sample(rng), center_noise.sample(rng));
    let (mut sl, mut sw, sh) =
        (size_noise.sample(rng), size_noise.sample(rng), size_noise.sample(rng));
    if gross {
        let d = rng.gen_range(1.5..3.0);
        let theta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        dx += d * theta.cos();
        dy += d * theta.sin();
        let blow = rng.gen_range(1.5..2.0);
        if rng.gen_bool(0.5) {
            sl *= blow;
            sw *= blow;
        } else {
            sl /= blow;
            sw /= blow;
        }
    }
    let yaw = normalize_angle(gt.yaw + yaw_noise.sample(rng));
    Box3::new(
        Vec3::new(gt.center.x + dx, gt.center.y + dy, gt.center.z),
        Size3::new(
            (gt.size.length * sl).max(0.2),
            (gt.size.width * sw).max(0.2),
            (gt.size.height * sh).max(0.2),
        ),
        yaw,
    )
}

fn true_confidence(quality: f64, profile: &DetectorProfile, rng: &mut impl Rng) -> f64 {
    let noise = Normal::new(0.0, profile.confidence_noise_std.max(1e-9))
        .expect("positive std")
        .sample(rng);
    let uniform = rng.gen_range(0.2..1.0);
    (profile.confidence_calibration * quality
        + (1.0 - profile.confidence_calibration) * uniform
        + noise)
        .clamp(0.05, 0.99)
}

fn ghost_confidence(profile: &DetectorProfile, rng: &mut impl Rng) -> f64 {
    Normal::new(profile.ghost_confidence_mean, profile.ghost_confidence_std.max(1e-9))
        .expect("positive std")
        .sample(rng)
        .clamp(0.05, 0.99)
}

/// Sample an integer count with the given expectation (floor plus a
/// Bernoulli on the fractional part; adequate for the small rates used).
fn sample_count(expected: f64, rng: &mut impl Rng) -> usize {
    let base = expected.floor() as usize;
    let frac = expected - base as f64;
    base + usize::from(frac > 0.0 && rng.gen_bool(frac.clamp(0.0, 1.0)))
}

fn random_class(rng: &mut impl Rng) -> ObjectClass {
    let classes = ObjectClass::EVALUATED;
    classes[rng.gen_range(0..classes.len())]
}

fn random_position(rng: &mut impl Rng) -> Vec2 {
    let r = rng.gen_range(8.0..55.0);
    let theta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    Vec2::new(r * theta.cos(), r * theta.sin())
}

fn clutter_box(class: ObjectClass, pos: Vec2, rng: &mut impl Rng) -> Box3 {
    let (l, w, h) = class.mean_dims();
    let s = rng.gen_range(0.6..1.6);
    Box3::on_ground(
        pos.x + rng.gen_range(-1.0..1.0),
        pos.y + rng.gen_range(-1.0..1.0),
        0.0,
        (l * s).max(0.3),
        (w * s).max(0.3),
        (h * rng.gen_range(0.7..1.3)).max(0.3),
        rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GtBox, TrackId};
    use loa_geom::Pose2;
    use rand::rngs::StdRng;

    fn mk_frames(n_frames: u32, n_tracks: u64, points: u32) -> Vec<Frame> {
        (0..n_frames)
            .map(|i| Frame {
                index: FrameId(i),
                timestamp: i as f64 * 0.2,
                ego_pose: Pose2::identity(),
                gt: (0..n_tracks)
                    .map(|t| GtBox {
                        track: TrackId(t),
                        class: ObjectClass::Car,
                        bbox: Box3::on_ground(
                            12.0 + t as f64 * 7.0,
                            (t % 2) as f64 * 6.0 - 3.0,
                            0.0,
                            4.5,
                            1.9,
                            1.6,
                            0.0,
                        ),
                        lidar_points: points,
                        occlusion: 0.0,
                        visible: true,
                    })
                    .collect(),
                human_labels: vec![],
                detections: vec![],
            })
            .collect()
    }

    #[test]
    fn detect_prob_saturates_with_points() {
        let p = DetectorProfile::internal_like();
        assert!(p.detect_prob(0) < 1e-9);
        assert!(p.detect_prob(5) < p.detect_prob(50));
        assert!(p.detect_prob(500) <= p.base_detect_prob + 1e-12);
        assert!(p.detect_prob(500) > 0.9 * p.base_detect_prob);
    }

    #[test]
    fn rich_objects_usually_detected() {
        let mut frames = mk_frames(40, 3, 300);
        let profile = DetectorProfile::internal_like();
        run_detector(&mut frames, &profile, &mut StdRng::seed_from_u64(1));
        let true_dets: usize = frames
            .iter()
            .flat_map(|f| &f.detections)
            .filter(|d| matches!(d.provenance, DetectionProvenance::TrueObject(_)))
            .count();
        // 3 tracks × 40 frames = 120 opportunities at ~0.96 detection.
        assert!(true_dets > 100, "got {true_dets}");
    }

    #[test]
    fn sparse_objects_usually_missed() {
        let mut frames = mk_frames(40, 3, 2);
        let profile = DetectorProfile::internal_like();
        run_detector(&mut frames, &profile, &mut StdRng::seed_from_u64(2));
        let true_dets: usize = frames
            .iter()
            .flat_map(|f| &f.detections)
            .filter(|d| matches!(d.provenance, DetectionProvenance::TrueObject(_)))
            .count();
        assert!(true_dets < 40, "got {true_dets}");
    }

    #[test]
    fn detection_boxes_near_ground_truth() {
        let mut frames = mk_frames(30, 2, 300);
        let profile = DetectorProfile::internal_like();
        run_detector(&mut frames, &profile, &mut StdRng::seed_from_u64(3));
        for frame in &frames {
            for d in &frame.detections {
                if let DetectionProvenance::TrueObject(t) = d.provenance {
                    if d.localization_error {
                        continue;
                    }
                    let g = frame.gt.iter().find(|g| g.track == t).unwrap();
                    assert!(d.bbox.bev_center_distance(&g.bbox) < 1.0);
                    assert!(d.bbox.is_valid());
                    assert!((0.0..=1.0).contains(&d.confidence));
                }
            }
        }
    }

    #[test]
    fn lyft_profile_produces_more_ghosts() {
        let trials = 12;
        let mut lyft_fp = 0usize;
        let mut internal_fp = 0usize;
        for seed in 0..trials {
            let mut frames = mk_frames(60, 2, 200);
            run_detector(
                &mut frames,
                &DetectorProfile::lyft_like(),
                &mut StdRng::seed_from_u64(seed),
            );
            lyft_fp += frames
                .iter()
                .flat_map(|f| &f.detections)
                .filter(|d| d.provenance.is_false_positive())
                .count();
            let mut frames = mk_frames(60, 2, 200);
            run_detector(
                &mut frames,
                &DetectorProfile::internal_like(),
                &mut StdRng::seed_from_u64(seed + 777),
            );
            internal_fp += frames
                .iter()
                .flat_map(|f| &f.detections)
                .filter(|d| d.provenance.is_false_positive())
                .count();
        }
        assert!(lyft_fp > internal_fp, "lyft {lyft_fp} vs internal {internal_fp}");
    }

    #[test]
    fn ghost_tracks_are_contiguous_and_recorded() {
        let mut profile = DetectorProfile::lyft_like();
        profile.persistent_ghosts_per_scene = 3.0;
        let mut frames = mk_frames(60, 1, 200);
        let outcome = run_detector(&mut frames, &profile, &mut StdRng::seed_from_u64(4));
        assert!(!outcome.ghost_tracks.is_empty());
        for (ghost, span) in &outcome.ghost_tracks {
            assert!(!span.is_empty());
            // Frames are consecutive.
            for w in span.windows(2) {
                assert_eq!(w[1].0, w[0].0 + 1);
            }
            // Every recorded frame actually contains a ghost detection.
            for fid in span {
                let frame = &frames[fid.0 as usize];
                assert!(frame
                    .detections
                    .iter()
                    .any(|d| d.provenance == DetectionProvenance::PersistentGhost(*ghost)));
            }
            // Ghost geometry is erratic: volumes within a track vary a lot.
            let volumes: Vec<f64> = span
                .iter()
                .map(|fid| {
                    frames[fid.0 as usize]
                        .detections
                        .iter()
                        .find(|d| d.provenance == DetectionProvenance::PersistentGhost(*ghost))
                        .unwrap()
                        .bbox
                        .volume()
                })
                .collect();
            if volumes.len() >= 3 {
                let max = volumes.iter().copied().fold(f64::MIN, f64::max);
                let min = volumes.iter().copied().fold(f64::MAX, f64::min);
                assert!(max / min > 1.2, "ghost volumes too consistent: {volumes:?}");
            }
        }
    }

    #[test]
    fn calibration_separates_profiles() {
        // The gap between mean true-detection confidence and mean
        // false-positive confidence should be much wider for the internal
        // profile (calibrated) than the Lyft profile (miscalibrated).
        let mean_conf = |frames: &[Frame], fp: bool| -> f64 {
            let vals: Vec<f64> = frames
                .iter()
                .flat_map(|f| &f.detections)
                .filter(|d| d.provenance.is_false_positive() == fp)
                .map(|d| d.confidence)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let mut lyft_gap = 0.0;
        let mut internal_gap = 0.0;
        for seed in 0..8 {
            let mut frames = mk_frames(80, 3, 150);
            run_detector(
                &mut frames,
                &DetectorProfile::lyft_like(),
                &mut StdRng::seed_from_u64(seed),
            );
            lyft_gap += mean_conf(&frames, false) - mean_conf(&frames, true);
            let mut frames = mk_frames(80, 3, 150);
            run_detector(
                &mut frames,
                &DetectorProfile::internal_like(),
                &mut StdRng::seed_from_u64(seed + 99),
            );
            internal_gap += mean_conf(&frames, false) - mean_conf(&frames, true);
        }
        assert!(
            internal_gap > lyft_gap,
            "internal gap {internal_gap} should exceed lyft gap {lyft_gap}"
        );
    }

    #[test]
    fn duplicates_reference_real_tracks() {
        let mut profile = DetectorProfile::lyft_like();
        profile.duplicate_rate = 0.5;
        let mut frames = mk_frames(30, 2, 300);
        run_detector(&mut frames, &profile, &mut StdRng::seed_from_u64(5));
        let mut saw_duplicate = false;
        for frame in &frames {
            for d in &frame.detections {
                if let DetectionProvenance::Duplicate(t) = d.provenance {
                    saw_duplicate = true;
                    assert!(frame.gt.iter().any(|g| g.track == t));
                }
            }
        }
        assert!(saw_duplicate);
    }

    #[test]
    fn empty_scene_is_noop() {
        let outcome =
            run_detector(&mut [], &DetectorProfile::lyft_like(), &mut StdRng::seed_from_u64(0));
        assert!(outcome.ghost_tracks.is_empty());
    }

    #[test]
    fn sample_count_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(6);
        let total: usize = (0..2000).map(|_| sample_count(1.7, &mut rng)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 1.7).abs() < 0.1, "mean {mean}");
        assert_eq!(sample_count(3.0, &mut rng), 3);
    }
}
