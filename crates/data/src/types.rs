//! Core dataset record types.
//!
//! A generated scene carries three parallel views of the world per frame:
//!
//! * the simulation ground truth ([`GtBox`]) — what is actually there,
//! * the vendor's human labels ([`LabeledBox`]) — possibly with injected
//!   errors,
//! * the ML model's detections ([`Detection`]) — noisy, with ghosts.
//!
//! Ground-truth provenance fields (`gt_track`, [`DetectionProvenance`])
//! exist **only for evaluation**: they let the harness decide whether a
//! flagged candidate is a real error without a human auditor. The Fixy
//! engine never reads them.

use crate::class::ObjectClass;
use loa_geom::{Box3, Pose2};
use serde::{Deserialize, Serialize};

/// Persistent identity of a simulated actor (ground-truth track).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TrackId(pub u64);

/// Frame index within a scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameId(pub u32);

/// Identity of an injected persistent ghost track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GhostId(pub u32);

/// Where an observation came from (the paper's "observation sources").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObservationSource {
    /// Vendor-provided human label.
    Human,
    /// LIDAR ML model prediction.
    Model,
    /// Expert auditor label (simulated: the ground truth itself).
    Auditor,
}

/// Ground truth for one actor in one frame (ego-frame box).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GtBox {
    pub track: TrackId,
    pub class: ObjectClass,
    /// Box in the ego frame of this frame.
    pub bbox: Box3,
    /// Simulated LIDAR returns on this object this frame.
    pub lidar_points: u32,
    /// Fraction of the object's angular extent shadowed by nearer objects.
    pub occlusion: f64,
    /// Whether the object counts as perceivable this frame (in range, not
    /// fully occluded, enough returns). Only visible boxes are candidates
    /// for labeling/detection and for counting as labeling errors.
    pub visible: bool,
}

/// A human-proposed label (ego-frame box).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledBox {
    pub bbox: Box3,
    pub class: ObjectClass,
    /// Evaluation-only provenance: which ground-truth actor this label
    /// annotates. The Fixy engine must not read this.
    pub gt_track: TrackId,
}

/// Why a detection exists (evaluation-only provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionProvenance {
    /// Detection of a real object.
    TrueObject(TrackId),
    /// Short-lived clutter false positive (1–2 frames).
    Clutter,
    /// A frame of a persistent, geometrically inconsistent ghost track —
    /// the Section 8.4 model-error class ad-hoc assertions miss.
    PersistentGhost(GhostId),
    /// Duplicate box on an already-detected object.
    Duplicate(TrackId),
}

impl DetectionProvenance {
    /// True when the detection does not correspond to a real object.
    pub fn is_false_positive(self) -> bool {
        !matches!(self, DetectionProvenance::TrueObject(_))
    }
}

/// One ML-model detection (ego-frame box).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Detection {
    pub bbox: Box3,
    pub class: ObjectClass,
    /// Model confidence in `[0, 1]`.
    pub confidence: f64,
    /// Evaluation-only provenance. The Fixy engine must not read this.
    pub provenance: DetectionProvenance,
    /// Evaluation-only: whether `class` matches the ground truth class (for
    /// true-object detections; vacuously true otherwise).
    pub class_correct: bool,
    /// Evaluation-only: true when a true-object detection was given a
    /// grossly wrong box (the Section 8.4 localization-error class).
    pub localization_error: bool,
}

impl Detection {
    /// Whether this detection is erroneous in the Section 8.4 sense: a
    /// false positive, a misclassification, or a gross localization error.
    pub fn is_model_error(&self) -> bool {
        self.provenance.is_false_positive() || !self.class_correct || self.localization_error
    }
}

/// One frame of a scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Frame {
    pub index: FrameId,
    /// Seconds since the start of the scene.
    pub timestamp: f64,
    /// Ego pose in the world frame.
    pub ego_pose: Pose2,
    /// Ground truth (ego-frame), including invisible actors.
    pub gt: Vec<GtBox>,
    /// Vendor labels (ego-frame).
    pub human_labels: Vec<LabeledBox>,
    /// Model detections (ego-frame).
    pub detections: Vec<Detection>,
}

impl Frame {
    /// Visible ground-truth boxes only.
    pub fn visible_gt(&self) -> impl Iterator<Item = &GtBox> {
        self.gt.iter().filter(|g| g.visible)
    }
}

/// A record of one entirely-missed track (the most egregious vendor error).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissingTrack {
    pub track: TrackId,
    pub class: ObjectClass,
    /// Frames in which the object was visible (and hence should have been
    /// labeled).
    pub visible_frames: Vec<FrameId>,
}

/// A record of one missing label within an otherwise-labeled track.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissingBox {
    pub track: TrackId,
    pub class: ObjectClass,
    pub frame: FrameId,
}

/// A record of one vendor class flip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassFlip {
    pub track: TrackId,
    pub frame: FrameId,
    pub true_class: ObjectClass,
    pub labeled_class: ObjectClass,
}

/// A record of one whole-track class swap: the vendor drew correct boxes
/// for the object but tagged every one of them with a grossly wrong class
/// (pedestrian labeled as truck). Distinct from the per-frame
/// [`ClassFlip`], which models rare flips between *confusable* classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassSwap {
    pub track: TrackId,
    pub true_class: ObjectClass,
    pub labeled_class: ObjectClass,
    /// Frames whose label carries the swapped class.
    pub frames: Vec<FrameId>,
}

/// A record of one injected inconsistent bundle (Figure 7): a spurious
/// model box stacked on a human label of the same object in one frame,
/// overlapping it in BEV but wildly inconsistent in volume (and class).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InconsistentBundle {
    /// The ground-truth actor whose label the spurious box overlaps.
    pub track: TrackId,
    pub frame: FrameId,
    pub true_class: ObjectClass,
    /// Class reported by the spurious model box.
    pub spurious_class: ObjectClass,
}

/// Everything the generator injected — the exact audit the paper needed
/// expert auditors for.
#[derive(Debug, Clone, Default, Serialize)]
pub struct InjectedErrors {
    /// Tracks the vendor missed entirely (Section 8.2's target).
    pub missing_tracks: Vec<MissingTrack>,
    /// Per-frame label misses inside labeled tracks (Section 8.3's target).
    pub missing_boxes: Vec<MissingBox>,
    /// Vendor class flips.
    pub class_flips: Vec<ClassFlip>,
    /// Whole-track class swaps (the fuzzer's typed label error).
    pub class_swaps: Vec<ClassSwap>,
    /// Persistent ghost tracks injected into the detector output
    /// (Section 8.4's target), with their frame spans.
    pub ghost_tracks: Vec<(GhostId, Vec<FrameId>)>,
    /// Injected inconsistent bundles (Figure 7's error shape).
    pub inconsistent_bundles: Vec<InconsistentBundle>,
}

// Hand-written for backward compatibility: scene JSON written before the
// fuzzer's typed taxonomy existed has no `class_swaps` /
// `inconsistent_bundles` keys; those records default to empty instead of
// failing the load. The original four fields stay required.
impl serde::Deserialize for InjectedErrors {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        fn required<T: serde::Deserialize>(
            v: &serde::Value,
            field: &'static str,
        ) -> Result<T, serde::DeError> {
            match v.get(field) {
                Some(x) => T::from_json_value(x),
                None => Err(serde::DeError::custom(format!("missing field `{field}`"))),
            }
        }
        fn optional<T: serde::Deserialize + Default>(
            v: &serde::Value,
            field: &str,
        ) -> Result<T, serde::DeError> {
            match v.get(field) {
                Some(x) => T::from_json_value(x),
                None => Ok(T::default()),
            }
        }
        if v.as_object().is_none() {
            return Err(serde::DeError::custom(format!(
                "expected object for InjectedErrors, got {v:?}"
            )));
        }
        Ok(InjectedErrors {
            missing_tracks: required(v, "missing_tracks")?,
            missing_boxes: required(v, "missing_boxes")?,
            class_flips: required(v, "class_flips")?,
            class_swaps: optional(v, "class_swaps")?,
            ghost_tracks: required(v, "ghost_tracks")?,
            inconsistent_bundles: optional(v, "inconsistent_bundles")?,
        })
    }

    // Same legacy contract, streaming: the two taxonomy fields default
    // to empty when their keys are absent; the original four stay
    // required; unknown keys are skipped.
    fn from_json_stream(r: &mut serde::json::JsonReader<'_>) -> Result<Self, serde::DeError> {
        fn take<T: serde::Deserialize>(
            slot: Option<T>,
            field: &'static str,
        ) -> Result<T, serde::DeError> {
            slot.ok_or_else(|| serde::DeError::custom(format!("missing field `{field}`")))
        }
        let mut missing_tracks = None;
        let mut missing_boxes = None;
        let mut class_flips = None;
        let mut class_swaps = None;
        let mut ghost_tracks = None;
        let mut inconsistent_bundles = None;
        r.begin_object()?;
        loop {
            match r.next_key()? {
                None => break,
                Some("missing_tracks") => {
                    missing_tracks = Some(serde::Deserialize::from_json_stream(r)?)
                }
                Some("missing_boxes") => {
                    missing_boxes = Some(serde::Deserialize::from_json_stream(r)?)
                }
                Some("class_flips") => class_flips = Some(serde::Deserialize::from_json_stream(r)?),
                Some("class_swaps") => class_swaps = Some(serde::Deserialize::from_json_stream(r)?),
                Some("ghost_tracks") => {
                    ghost_tracks = Some(serde::Deserialize::from_json_stream(r)?)
                }
                Some("inconsistent_bundles") => {
                    inconsistent_bundles = Some(serde::Deserialize::from_json_stream(r)?)
                }
                Some(_) => r.skip_value()?,
            }
        }
        Ok(InjectedErrors {
            missing_tracks: take(missing_tracks, "missing_tracks")?,
            missing_boxes: take(missing_boxes, "missing_boxes")?,
            class_flips: take(class_flips, "class_flips")?,
            class_swaps: class_swaps.unwrap_or_default(),
            ghost_tracks: take(ghost_tracks, "ghost_tracks")?,
            inconsistent_bundles: inconsistent_bundles.unwrap_or_default(),
        })
    }
}

impl InjectedErrors {
    /// Total number of injected vendor label errors.
    pub fn label_error_count(&self) -> usize {
        self.missing_tracks.len()
            + self.missing_boxes.len()
            + self.class_flips.len()
            + self.class_swaps.len()
    }

    /// Whether the scene contains any vendor label error.
    pub fn has_label_errors(&self) -> bool {
        self.label_error_count() > 0
    }
}

/// A complete generated scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneData {
    /// Stable scene identifier (profile name + index + seed).
    pub id: String,
    /// Seconds between frames.
    pub frame_dt: f64,
    pub frames: Vec<Frame>,
    /// The injected-error audit for evaluation.
    pub injected: InjectedErrors,
}

impl SceneData {
    /// Scene duration in seconds.
    pub fn duration(&self) -> f64 {
        self.frame_dt * self.frames.len() as f64
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Distinct ground-truth tracks visible at least once.
    pub fn visible_track_ids(&self) -> Vec<TrackId> {
        let mut ids: Vec<TrackId> = self
            .frames
            .iter()
            .flat_map(|f| f.visible_gt().map(|g| g.track))
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Validate structural invariants (frame ordering, box validity).
    /// Generated scenes always pass; loaders run this on untrusted input.
    pub fn validate(&self) -> Result<(), String> {
        if self.frames.is_empty() {
            return Err("scene has no frames".into());
        }
        if !(self.frame_dt.is_finite() && self.frame_dt > 0.0) {
            return Err(format!("bad frame_dt {}", self.frame_dt));
        }
        for (i, frame) in self.frames.iter().enumerate() {
            if frame.index.0 as usize != i {
                return Err(format!("frame {} has index {:?}", i, frame.index));
            }
            for g in &frame.gt {
                if !g.bbox.is_valid() {
                    return Err(format!("invalid gt box in frame {i}"));
                }
            }
            for l in &frame.human_labels {
                if !l.bbox.is_valid() {
                    return Err(format!("invalid label box in frame {i}"));
                }
            }
            for d in &frame.detections {
                if !d.bbox.is_valid() {
                    return Err(format!("invalid detection box in frame {i}"));
                }
                if !(0.0..=1.0).contains(&d.confidence) {
                    return Err(format!("confidence {} out of range in frame {i}", d.confidence));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loa_geom::{Size3, Vec3};

    fn mk_box() -> Box3 {
        Box3::new(Vec3::new(5.0, 0.0, 0.8), Size3::new(4.5, 1.9, 1.6), 0.0)
    }

    fn mk_frame(i: u32) -> Frame {
        Frame {
            index: FrameId(i),
            timestamp: i as f64 * 0.2,
            ego_pose: Pose2::identity(),
            gt: vec![GtBox {
                track: TrackId(1),
                class: ObjectClass::Car,
                bbox: mk_box(),
                lidar_points: 120,
                occlusion: 0.0,
                visible: true,
            }],
            human_labels: vec![],
            detections: vec![],
        }
    }

    #[test]
    fn provenance_false_positive_classification() {
        assert!(!DetectionProvenance::TrueObject(TrackId(1)).is_false_positive());
        assert!(DetectionProvenance::Clutter.is_false_positive());
        assert!(DetectionProvenance::PersistentGhost(GhostId(0)).is_false_positive());
        assert!(DetectionProvenance::Duplicate(TrackId(1)).is_false_positive());
    }

    #[test]
    fn detection_model_error_logic() {
        let mut d = Detection {
            bbox: mk_box(),
            class: ObjectClass::Car,
            confidence: 0.9,
            provenance: DetectionProvenance::TrueObject(TrackId(1)),
            class_correct: true,
            localization_error: false,
        };
        assert!(!d.is_model_error());
        d.localization_error = true;
        assert!(d.is_model_error());
        d.localization_error = false;
        d.class_correct = false;
        assert!(d.is_model_error());
        d.class_correct = true;
        d.provenance = DetectionProvenance::Clutter;
        assert!(d.is_model_error());
    }

    #[test]
    fn scene_accessors() {
        let scene = SceneData {
            id: "test".into(),
            frame_dt: 0.2,
            frames: vec![mk_frame(0), mk_frame(1), mk_frame(2)],
            injected: InjectedErrors::default(),
        };
        assert_eq!(scene.frame_count(), 3);
        assert!((scene.duration() - 0.6).abs() < 1e-12);
        assert_eq!(scene.visible_track_ids(), vec![TrackId(1)]);
        scene.validate().unwrap();
    }

    #[test]
    fn validation_rejects_malformed_scenes() {
        let empty = SceneData {
            id: "e".into(),
            frame_dt: 0.2,
            frames: vec![],
            injected: InjectedErrors::default(),
        };
        assert!(empty.validate().is_err());

        let mut bad_dt = SceneData {
            id: "d".into(),
            frame_dt: 0.0,
            frames: vec![mk_frame(0)],
            injected: InjectedErrors::default(),
        };
        assert!(bad_dt.validate().is_err());
        bad_dt.frame_dt = f64::NAN;
        assert!(bad_dt.validate().is_err());

        let mut bad_index = SceneData {
            id: "i".into(),
            frame_dt: 0.2,
            frames: vec![mk_frame(5)],
            injected: InjectedErrors::default(),
        };
        assert!(bad_index.validate().is_err());
        bad_index.frames[0].index = FrameId(0);
        bad_index.validate().unwrap();

        let mut bad_conf = bad_index.clone();
        bad_conf.frames[0].detections.push(Detection {
            bbox: mk_box(),
            class: ObjectClass::Car,
            confidence: 1.5,
            provenance: DetectionProvenance::Clutter,
            class_correct: true,
            localization_error: false,
        });
        assert!(bad_conf.validate().is_err());
    }

    #[test]
    fn injected_error_counting() {
        let mut inj = InjectedErrors::default();
        assert!(!inj.has_label_errors());
        inj.missing_tracks.push(MissingTrack {
            track: TrackId(3),
            class: ObjectClass::Truck,
            visible_frames: vec![FrameId(0), FrameId(1)],
        });
        inj.missing_boxes.push(MissingBox {
            track: TrackId(4),
            class: ObjectClass::Car,
            frame: FrameId(2),
        });
        assert_eq!(inj.label_error_count(), 2);
        assert!(inj.has_label_errors());
    }

    #[test]
    fn serde_roundtrip() {
        let scene = SceneData {
            id: "rt".into(),
            frame_dt: 0.2,
            frames: vec![mk_frame(0)],
            injected: InjectedErrors::default(),
        };
        let json = serde_json::to_string(&scene).unwrap();
        let back: SceneData = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "rt");
        assert_eq!(back.frames.len(), 1);
        assert_eq!(back.frames[0].gt[0].track, TrackId(1));
    }
}
