//! Procedural scenario fuzzer: seeded world composition plus a
//! registry-driven taxonomy of typed, injected errors.
//!
//! The handcrafted builders in [`crate::scenarios`] reproduce five of the
//! paper's figures; this module generalizes them into a generator that
//! composes *arbitrary* worlds (randomized actor counts and classes,
//! motion models, ego trajectories, occluder walls, lidar and
//! vendor/detector noise profiles) and then injects a **known, typed
//! error set** per scene. Every injection is recorded in
//! [`InjectedErrors`], so a corpus of fuzzed scenes doubles as an exact
//! recall oracle: an error-finding system that works must surface every
//! injected error near the top of its worklist (`loa_eval`'s
//! `injection_recall` experiment asserts exactly that).
//!
//! Two design rules keep the oracle sound:
//!
//! 1. **Clean substrate.** The fuzzer's vendor and detector profiles
//!    inject *no* spontaneous errors (no random track misses, clutter,
//!    ghosts, or duplicates) — only calibrated observation noise. The
//!    registry's injections are therefore the complete error set.
//! 2. **Observable injections.** Each [`ErrorInjector`] only targets
//!    elements where the error is detectable in principle (e.g. a track
//!    is only deleted from the labels if the detector consistently saw
//!    the object, so a model-only track remains as evidence). An
//!    injector that finds no eligible target injects nothing rather than
//!    planting an unfindable error.

use crate::class::ObjectClass;
use crate::detector::{run_detector, DetectorProfile};
use crate::lidar::LidarConfig;
use crate::scene::simulate_frames;
use crate::types::{
    ClassSwap, Detection, DetectionProvenance, FrameId, GhostId, InconsistentBundle,
    InjectedErrors, MissingBox, MissingTrack, SceneData, TrackId,
};
use crate::vendor::{label_scene, VendorProfile};
use crate::world::{Actor, Motion, World, WorldConfig};
use loa_geom::{normalize_angle, Box3, Size3, Vec2};
use rand::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// The typed error taxonomy — registry keys, generalizing the paper-figure
/// scenarios (see the table in [`crate::scenarios`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorKind {
    /// A visible, well-detected object with every vendor label removed
    /// (Figures 1/4/8).
    MissingTrack,
    /// A single frame's label dropped from an otherwise-labeled track
    /// (Figure 6).
    MissingBox,
    /// A whole track labeled with a grossly wrong class.
    ClassSwap,
    /// A persistent, geometrically erratic spurious model track
    /// (Figures 5/9).
    GhostTrack,
    /// A spurious model box stacked on a human label, overlapping in BEV
    /// but wildly inconsistent in volume and class (Figure 7).
    InconsistentBundle,
}

impl ErrorKind {
    /// All kinds, in stable registry order.
    pub const ALL: [ErrorKind; 5] = [
        ErrorKind::MissingTrack,
        ErrorKind::MissingBox,
        ErrorKind::ClassSwap,
        ErrorKind::GhostTrack,
        ErrorKind::InconsistentBundle,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::MissingTrack => "missing-track",
            ErrorKind::MissingBox => "missing-box",
            ErrorKind::ClassSwap => "class-swap",
            ErrorKind::GhostTrack => "ghost-track",
            ErrorKind::InconsistentBundle => "inconsistent-bundle",
        }
    }

    /// The paper figure(s) the kind descends from.
    pub fn paper_figure(self) -> &'static str {
        match self {
            ErrorKind::MissingTrack => "Figures 1, 4, 8",
            ErrorKind::MissingBox => "Figure 6",
            ErrorKind::ClassSwap => "Section 8.1 (vendor class errors)",
            ErrorKind::GhostTrack => "Figures 5, 9",
            ErrorKind::InconsistentBundle => "Figure 7",
        }
    }

    /// How many errors of this kind a scene's audit record carries.
    pub fn count_in(self, injected: &InjectedErrors) -> usize {
        match self {
            ErrorKind::MissingTrack => injected.missing_tracks.len(),
            ErrorKind::MissingBox => injected.missing_boxes.len(),
            ErrorKind::ClassSwap => injected.class_swaps.len(),
            ErrorKind::GhostTrack => injected.ghost_tracks.len(),
            ErrorKind::InconsistentBundle => injected.inconsistent_bundles.len(),
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The grossly-wrong class a swap or inconsistent bundle reports for a
/// true class — chosen so the reported class's volume prior is at least
/// an order of magnitude off (unlike the *confusable* flips of
/// [`ObjectClass::confusable_with`]).
pub fn swap_partner(class: ObjectClass) -> ObjectClass {
    match class {
        ObjectClass::Pedestrian => ObjectClass::Truck,
        ObjectClass::Bicycle => ObjectClass::Bus,
        ObjectClass::Motorcycle => ObjectClass::Truck,
        ObjectClass::Car => ObjectClass::Pedestrian,
        ObjectClass::Truck => ObjectClass::Pedestrian,
        ObjectClass::Bus => ObjectClass::Motorcycle,
    }
}

// ---------------------------------------------------------------------------
// Per-actor eligibility summaries
// ---------------------------------------------------------------------------

/// What one ground-truth actor looks like across a scene — the basis of
/// every injector's eligibility test.
#[derive(Debug, Clone)]
pub struct ActorSummary {
    pub class: ObjectClass,
    /// Frames carrying a vendor label for this actor.
    pub labeled_frames: Vec<FrameId>,
    /// Frames carrying a true-object model detection of this actor.
    pub detected_frames: Vec<FrameId>,
    /// Frames where the actor is visible in the simulation.
    pub visible_frames: Vec<FrameId>,
    /// Closest approach to the AV over visible frames (m).
    pub min_distance: f64,
}

/// Summarize every actor in a scene (evaluation-side helper: reads
/// ground-truth provenance, which the Fixy engine never does).
pub fn summarize_actors(scene: &SceneData) -> Vec<(TrackId, ActorSummary)> {
    let mut map: std::collections::BTreeMap<TrackId, ActorSummary> = Default::default();
    for frame in &scene.frames {
        for g in &frame.gt {
            let entry = map.entry(g.track).or_insert_with(|| ActorSummary {
                class: g.class,
                labeled_frames: Vec::new(),
                detected_frames: Vec::new(),
                visible_frames: Vec::new(),
                min_distance: f64::INFINITY,
            });
            if g.visible {
                entry.visible_frames.push(frame.index);
                entry.min_distance = entry.min_distance.min(g.bbox.ground_distance_to_origin());
            }
        }
        for l in &frame.human_labels {
            if let Some(entry) = map.get_mut(&l.gt_track) {
                entry.labeled_frames.push(frame.index);
            }
        }
        for d in &frame.detections {
            if let DetectionProvenance::TrueObject(t) = d.provenance {
                if let Some(entry) = map.get_mut(&t) {
                    entry.detected_frames.push(frame.index);
                }
            }
        }
    }
    map.into_iter().collect()
}

/// Remove the vendor labels of `track` from every frame and record it as
/// an entirely-missing track (shared with the handcrafted scenarios).
pub fn strip_track_labels(scene: &mut SceneData, track: TrackId, class: ObjectClass) {
    let mut visible_frames = Vec::new();
    for frame in &mut scene.frames {
        frame.human_labels.retain(|l| l.gt_track != track);
        if frame.gt.iter().any(|g| g.track == track && g.visible) {
            visible_frames.push(frame.index);
        }
    }
    scene
        .injected
        .missing_tracks
        .push(MissingTrack { track, class, visible_frames });
}

// ---------------------------------------------------------------------------
// Injector registry
// ---------------------------------------------------------------------------

/// One typed error injector. `used` carries the actors already targeted
/// by earlier injections in the scene so two injections never collide on
/// one track (which could make either unfindable).
pub trait ErrorInjector: Send + Sync {
    fn kind(&self) -> ErrorKind;

    /// Inject one error instance; returns `true` (and records the error
    /// in `scene.injected`) if an eligible target existed.
    fn inject(&self, scene: &mut SceneData, used: &mut BTreeSet<TrackId>, rng: &mut StdRng)
        -> bool;
}

/// The registry mapping each [`ErrorKind`] to its injector.
pub struct InjectorRegistry {
    injectors: Vec<Box<dyn ErrorInjector>>,
}

impl std::fmt::Debug for InjectorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<&str> = self.injectors.iter().map(|i| i.kind().name()).collect();
        f.debug_struct("InjectorRegistry").field("kinds", &kinds).finish()
    }
}

impl InjectorRegistry {
    /// The standard registry: one injector per taxonomy kind, in
    /// [`ErrorKind::ALL`] order.
    pub fn standard() -> Self {
        InjectorRegistry {
            injectors: vec![
                Box::new(MissingTrackInjector::default()),
                Box::new(MissingBoxInjector::default()),
                Box::new(ClassSwapInjector::default()),
                Box::new(GhostTrackInjector::default()),
                Box::new(InconsistentBundleInjector::default()),
            ],
        }
    }

    pub fn kinds(&self) -> Vec<ErrorKind> {
        self.injectors.iter().map(|i| i.kind()).collect()
    }

    pub fn get(&self, kind: ErrorKind) -> Option<&dyn ErrorInjector> {
        self.injectors.iter().find(|i| i.kind() == kind).map(|b| b.as_ref())
    }

    pub fn iter(&self) -> impl Iterator<Item = &dyn ErrorInjector> {
        self.injectors.iter().map(|b| b.as_ref())
    }

    pub fn len(&self) -> usize {
        self.injectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.injectors.is_empty()
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

/// Deletes every label of a well-detected, nearby labeled track — the
/// Figure 1/4/8 error. Eligibility demands dense model coverage so the
/// remaining model-only track is long enough to survive the Count filter
/// and consistent enough to rank as a likely real object.
#[derive(Debug, Clone)]
pub struct MissingTrackInjector {
    pub min_detected_frames: usize,
    pub max_distance: f64,
}

impl Default for MissingTrackInjector {
    fn default() -> Self {
        MissingTrackInjector { min_detected_frames: 8, max_distance: 30.0 }
    }
}

impl ErrorInjector for MissingTrackInjector {
    fn kind(&self) -> ErrorKind {
        ErrorKind::MissingTrack
    }

    fn inject(
        &self,
        scene: &mut SceneData,
        used: &mut BTreeSet<TrackId>,
        rng: &mut StdRng,
    ) -> bool {
        let summaries = summarize_actors(scene);
        let eligible: Vec<(TrackId, ObjectClass)> = summaries
            .iter()
            .filter(|(track, s)| {
                !used.contains(track)
                    && !s.labeled_frames.is_empty()
                    && s.detected_frames.len() >= self.min_detected_frames
                    && s.min_distance <= self.max_distance
                    && dense_coverage(&s.detected_frames)
                    && track_is_cohesive(scene, *track, &s.detected_frames)
                    && actor_is_isolated(scene, *track, &s.detected_frames)
                    && volume_is_typical(scene, *track)
            })
            .map(|(track, s)| (*track, s.class))
            .collect();
        let Some(&(track, class)) = pick(&eligible, rng) else {
            return false;
        };
        used.insert(track);
        strip_track_labels(scene, track, class);
        true
    }
}

/// Whether a frame set has few holes between its first and last entry —
/// the tracker (max gap 2) will chain such detections into one track.
fn dense_coverage(frames: &[FrameId]) -> bool {
    let (Some(first), Some(last)) = (frames.first(), frames.last()) else {
        return false;
    };
    let span = (last.0 - first.0 + 1) as usize;
    frames.len() * 10 >= span * 9 // ≥ 90% of the span covered
}

/// Whether an actor keeps clear of every *other* visible actor around
/// its frames. Worlds are sampled without collision avoidance, so two
/// actors can overlap; the tracker (BEV IOU > 0.05 across adjacent
/// frames) would then chain one actor's detections into the other's
/// track, and an error injected on either becomes unobservable (e.g. a
/// stripped track's evidence merges into a labeled track and is zeroed
/// by the human-presence AOF).
fn actor_is_isolated(scene: &SceneData, track: TrackId, frames: &[FrameId]) -> bool {
    for &f in frames {
        let idx = f.0 as usize;
        let Some(own) = scene.frames[idx].gt.iter().find(|g| g.track == track) else {
            return false;
        };
        // Check the frame and its neighbors out to the tracker's max gap
        // (cross-frame links can bridge two frames).
        let lo = idx.saturating_sub(2);
        let hi = (idx + 2).min(scene.frames.len() - 1);
        for frame in &scene.frames[lo..=hi] {
            for other in frame.gt.iter().filter(|g| g.track != track && g.visible) {
                if loa_geom::iou_bev(&own.bbox, &other.bbox) > 0.02 {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether an actor's boxes at the given frames will chain into one
/// assembled track: consecutive entries at most the tracker's gap apart
/// and overlapping comfortably above its IOU threshold. Fast, small
/// objects can move a full box length between frames; targeting such an
/// actor would fragment the evidence into Count-filtered singletons.
fn track_is_cohesive(scene: &SceneData, track: TrackId, frames: &[FrameId]) -> bool {
    if frames.len() < 2 {
        return false;
    }
    let box_at = |f: FrameId| {
        scene.frames[f.0 as usize]
            .gt
            .iter()
            .find(|g| g.track == track)
            .map(|g| g.bbox)
    };
    for w in frames.windows(2) {
        if w[1].0 - w[0].0 > 2 {
            return false;
        }
        let (Some(a), Some(b)) = (box_at(w[0]), box_at(w[1])) else {
            return false;
        };
        if loa_geom::iou_bev(&a, &b) < 0.15 {
            return false;
        }
    }
    true
}

/// Drops one frame's label from a labeled track while the detector saw
/// the object that frame — the Figure 6 error. The surviving model
/// detection becomes a model-only bundle inside a human track, exactly
/// the shape the missing-observation application surfaces.
#[derive(Debug, Clone)]
pub struct MissingBoxInjector {
    pub min_labeled_frames: usize,
    pub max_distance: f64,
}

impl Default for MissingBoxInjector {
    fn default() -> Self {
        MissingBoxInjector { min_labeled_frames: 6, max_distance: 22.0 }
    }
}

impl ErrorInjector for MissingBoxInjector {
    fn kind(&self) -> ErrorKind {
        ErrorKind::MissingBox
    }

    fn inject(
        &self,
        scene: &mut SceneData,
        used: &mut BTreeSet<TrackId>,
        rng: &mut StdRng,
    ) -> bool {
        let summaries = summarize_actors(scene);
        // Eligible: (track, frame) pairs where dropping the label leaves a
        // detection behind, the track stays labeled elsewhere, and the
        // object is close enough for the distance-severity weight to rank
        // it above far association debris.
        let mut eligible: Vec<(TrackId, ObjectClass, FrameId)> = Vec::new();
        for (track, s) in &summaries {
            if used.contains(track)
                || s.labeled_frames.len() < self.min_labeled_frames
                || s.min_distance > self.max_distance
                || !track_is_cohesive(scene, *track, &s.labeled_frames)
                || !volume_is_typical(scene, *track)
            {
                continue;
            }
            let detected: BTreeSet<FrameId> = s.detected_frames.iter().copied().collect();
            // Interior labeled frames only, so the track remains labeled on
            // both sides and the dropped frame clearly belongs to it. The
            // actor must also be isolated around the dropped frame: an
            // overlapping neighbor's label would absorb the surviving
            // detection into its bundle and zero the model-only factor.
            for &f in &s.labeled_frames[1..s.labeled_frames.len().saturating_sub(1)] {
                if detected.contains(&f)
                    && near_at_frame(scene, *track, f, self.max_distance)
                    && actor_is_isolated(scene, *track, &[f])
                {
                    eligible.push((*track, s.class, f));
                }
            }
        }
        let Some(&(track, class, frame)) = pick(&eligible, rng) else {
            return false;
        };
        used.insert(track);
        scene.frames[frame.0 as usize]
            .human_labels
            .retain(|l| l.gt_track != track);
        scene.injected.missing_boxes.push(MissingBox { track, class, frame });
        true
    }
}

fn near_at_frame(scene: &SceneData, track: TrackId, frame: FrameId, max_distance: f64) -> bool {
    scene.frames[frame.0 as usize]
        .gt
        .iter()
        .find(|g| g.track == track)
        .map(|g| g.bbox.ground_distance_to_origin() <= max_distance)
        .unwrap_or(false)
}

/// Whether an actor's box volume sits comfortably inside its class's
/// typical range (±1.5 relative σ per dimension). Actors sampled at the
/// ±2.5σ tails can fall outside the narrow per-class KDE support learned
/// from a small training corpus, flooring their likelihood — a stripped
/// or dropped label on such an actor would sink in the *identity*-AOF
/// rankings through no fault of the engine.
fn volume_is_typical(scene: &SceneData, track: TrackId) -> bool {
    let Some(g) = scene
        .frames
        .iter()
        .flat_map(|f| f.gt.iter())
        .find(|g| g.track == track)
    else {
        return false;
    };
    let (l, w, h) = g.class.mean_dims();
    let rel = g.class.dims_rel_std();
    let ratio = g.bbox.volume() / (l * w * h);
    let band = 1.0 + 1.2 * rel;
    ratio <= band.powi(3) && ratio >= band.powi(-3)
}

/// Relabels every box of a labeled track with a grossly wrong class
/// (pedestrian as truck): the boxes stay correct, the class prior is
/// violated by an order of magnitude, so the class-conditional volume
/// distribution flags the track.
#[derive(Debug, Clone)]
pub struct ClassSwapInjector {
    pub min_labeled_frames: usize,
}

impl Default for ClassSwapInjector {
    fn default() -> Self {
        ClassSwapInjector { min_labeled_frames: 6 }
    }
}

impl ErrorInjector for ClassSwapInjector {
    fn kind(&self) -> ErrorKind {
        ErrorKind::ClassSwap
    }

    fn inject(
        &self,
        scene: &mut SceneData,
        used: &mut BTreeSet<TrackId>,
        rng: &mut StdRng,
    ) -> bool {
        let summaries = summarize_actors(scene);
        let eligible: Vec<(TrackId, ObjectClass)> = summaries
            .iter()
            .filter(|(track, s)| {
                !used.contains(track)
                    && s.labeled_frames.len() >= self.min_labeled_frames
                    && track_is_cohesive(scene, *track, &s.labeled_frames)
            })
            .map(|(track, s)| (*track, s.class))
            .collect();
        let Some(&(track, true_class)) = pick(&eligible, rng) else {
            return false;
        };
        used.insert(track);
        let labeled_class = swap_partner(true_class);
        let mut frames = Vec::new();
        for frame in &mut scene.frames {
            for label in frame.human_labels.iter_mut().filter(|l| l.gt_track == track) {
                label.class = labeled_class;
                frames.push(frame.index);
            }
        }
        scene
            .injected
            .class_swaps
            .push(ClassSwap { track, true_class, labeled_class, frames });
        true
    }
}

/// Injects a persistent, geometrically erratic spurious model track (the
/// Figure 5/9 ghost): consecutive high-confidence boxes that overlap
/// frame to frame yet teleport, change volume, and spin implausibly.
#[derive(Debug, Clone)]
pub struct GhostTrackInjector {
    pub min_frames: usize,
    pub max_frames: usize,
}

impl Default for GhostTrackInjector {
    fn default() -> Self {
        GhostTrackInjector { min_frames: 6, max_frames: 10 }
    }
}

impl ErrorInjector for GhostTrackInjector {
    fn kind(&self) -> ErrorKind {
        ErrorKind::GhostTrack
    }

    fn inject(
        &self,
        scene: &mut SceneData,
        _used: &mut BTreeSet<TrackId>,
        rng: &mut StdRng,
    ) -> bool {
        let n_frames = scene.frames.len();
        if n_frames < self.min_frames {
            return false;
        }
        let ghost = GhostId(
            scene
                .injected
                .ghost_tracks
                .iter()
                .map(|(g, _)| g.0 + 1)
                .max()
                .unwrap_or(0),
        );
        // Every factor of the ghost must be implausible *by construction*
        // so its inverted score is near the maximum regardless of how the
        // learned library generalizes: a hugely blown-up truck box (volume
        // far outside any class's support), teleporting several box
        // lengths per frame (25+ m/s, beyond every training velocity),
        // spinning at ≥ 1.25 rad/s (beyond any turning actor). The drift
        // direction follows the box heading so consecutive boxes still
        // overlap and the tracker chains them. A walk that wanders onto a
        // real object would merge with its track and dilute the evidence;
        // retry placements until the whole walk stays clear.
        for _attempt in 0..8 {
            let span = rng.gen_range(self.min_frames..=self.max_frames.min(n_frames));
            let start = rng.gen_range(0..=(n_frames - span));
            let class = ObjectClass::Truck;
            let (ml, mw, mh) = class.mean_dims();
            let base_scale = rng.gen_range(2.4..2.8);
            let r = rng.gen_range(10.0..30.0);
            let theta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            let mut pos = Vec2::new(r * theta.cos(), r * theta.sin());
            let mut yaw = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            let confidence: f64 = rng.gen_range(0.85..0.95);
            let mut boxes: Vec<(usize, Box3, f64)> = Vec::new();
            for k in 0..span {
                let idx = start + k;
                let scale = base_scale * rng.gen_range(0.92..1.08);
                let length = ml * scale;
                // Drift ~1/3 of the box length along the heading: ≈ 30 m/s
                // at 5 Hz for a 20 m box.
                let step = rng.gen_range(0.28..0.35) * length;
                let dir = yaw + rng.gen_range(-0.25..0.25);
                pos += Vec2::new(dir.cos(), dir.sin()) * step;
                // Spin well past any plausible yaw rate, random sign.
                let spin = rng.gen_range(0.25..0.40) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                yaw = normalize_angle(yaw + spin);
                let bbox = Box3::on_ground(
                    pos.x,
                    pos.y,
                    0.0,
                    length,
                    mw * scale * rng.gen_range(0.9..1.1),
                    mh * rng.gen_range(0.8..1.2),
                    yaw,
                );
                let conf = (confidence + rng.gen_range(-0.04..0.04)).clamp(0.05, 0.99);
                boxes.push((idx, bbox, conf));
            }
            if !ghost_walk_is_isolated(scene, &boxes) || !ghost_walk_is_cohesive(&boxes) {
                continue;
            }
            let mut frames_hit = Vec::new();
            for (idx, bbox, conf) in boxes {
                scene.frames[idx].detections.push(Detection {
                    bbox,
                    class,
                    confidence: conf,
                    provenance: DetectionProvenance::PersistentGhost(ghost),
                    class_correct: true,
                    localization_error: false,
                });
                frames_hit.push(FrameId(idx as u32));
            }
            scene.injected.ghost_tracks.push((ghost, frames_hit));
            return true;
        }
        false
    }
}

/// Whether consecutive boxes of a candidate ghost walk overlap enough
/// for the tracker to chain them into one track: an erratic draw whose
/// boxes barely touch would fragment into Count-filtered singletons.
fn ghost_walk_is_cohesive(boxes: &[(usize, Box3, f64)]) -> bool {
    boxes.windows(2).all(|w| loa_geom::iou_bev(&w[0].1, &w[1].1) > 0.15)
}

/// Whether every box of a candidate ghost walk keeps clear of visible
/// ground truth and of already-present detections in its frame and the
/// adjacent ones (so the ghost forms its own model-only track).
fn ghost_walk_is_isolated(scene: &SceneData, boxes: &[(usize, Box3, f64)]) -> bool {
    for &(idx, ref bbox, _) in boxes {
        let lo = idx.saturating_sub(2);
        let hi = (idx + 2).min(scene.frames.len() - 1);
        for frame in &scene.frames[lo..=hi] {
            let gt_clear = frame
                .gt
                .iter()
                .filter(|g| g.visible)
                .all(|g| loa_geom::iou_bev(bbox, &g.bbox) <= 0.02);
            let det_clear = frame
                .detections
                .iter()
                .all(|d| loa_geom::iou_bev(bbox, &d.bbox) <= 0.02);
            if !gt_clear || !det_clear {
                return false;
            }
        }
    }
    true
}

/// Stacks a spurious model box on a human label of a nearby object — the
/// Figure 7 inconsistent bundle. The footprint is inflated just enough to
/// keep BEV IOU above the bundling threshold while the height (and class)
/// make the bundle's volumes wildly inconsistent.
#[derive(Debug, Clone)]
pub struct InconsistentBundleInjector {
    pub max_distance: f64,
    /// BEV footprint inflation (IOU with the label ≈ 1/f² must stay
    /// above the 0.5 bundling threshold).
    pub footprint_scale: f64,
    /// Height inflation — the volume-inconsistency driver.
    pub height_scale: f64,
}

impl Default for InconsistentBundleInjector {
    fn default() -> Self {
        InconsistentBundleInjector { max_distance: 30.0, footprint_scale: 1.18, height_scale: 5.0 }
    }
}

impl ErrorInjector for InconsistentBundleInjector {
    fn kind(&self) -> ErrorKind {
        ErrorKind::InconsistentBundle
    }

    fn inject(
        &self,
        scene: &mut SceneData,
        used: &mut BTreeSet<TrackId>,
        rng: &mut StdRng,
    ) -> bool {
        let summaries = summarize_actors(scene);
        let mut eligible: Vec<(TrackId, ObjectClass, FrameId)> = Vec::new();
        for (track, s) in &summaries {
            if used.contains(track) || s.labeled_frames.len() < 4 {
                continue;
            }
            for &f in &s.labeled_frames {
                if near_at_frame(scene, *track, f, self.max_distance) {
                    eligible.push((*track, s.class, f));
                }
            }
        }
        let Some(&(track, true_class, frame)) = pick(&eligible, rng) else {
            return false;
        };
        used.insert(track);
        let spurious_class = swap_partner(true_class);
        let frame_data = &mut scene.frames[frame.0 as usize];
        let label_box = frame_data
            .human_labels
            .iter()
            .find(|l| l.gt_track == track)
            .map(|l| l.bbox)
            .expect("eligibility checked the label exists");
        let size = Size3::new(
            label_box.size.length * self.footprint_scale,
            label_box.size.width * self.footprint_scale,
            label_box.size.height * self.height_scale,
        );
        let center = loa_geom::Vec3::new(
            label_box.center.x,
            label_box.center.y,
            size.height / 2.0 - label_box.size.height / 2.0 + label_box.center.z,
        );
        frame_data.detections.push(Detection {
            bbox: Box3::new(center, size, label_box.yaw),
            class: spurious_class,
            confidence: rng.gen_range(0.6..0.8),
            provenance: DetectionProvenance::Clutter,
            class_correct: true,
            localization_error: false,
        });
        scene.injected.inconsistent_bundles.push(InconsistentBundle {
            track,
            frame,
            true_class,
            spurious_class,
        });
        true
    }
}

// ---------------------------------------------------------------------------
// The fuzzer
// ---------------------------------------------------------------------------

/// Ranges the fuzzer draws each scene's world and noise profile from.
#[derive(Debug, Clone)]
pub struct FuzzProfile {
    /// Scene duration range (s).
    pub duration: (f64, f64),
    /// Seconds between frames.
    pub frame_dt: f64,
    /// Ego speed range (m/s).
    pub ego_speed: (f64, f64),
    /// Ego yaw-rate range (rad/s) — gentle curves either way.
    pub ego_yaw_rate: (f64, f64),
    /// Lidar beam count range.
    pub beam_count: (usize, usize),
    /// Extra actors beyond the guaranteed one-per-class cast.
    pub extra_actors: (usize, usize),
    /// Probability of spawning an occluder wall of slow traffic.
    pub occluder_prob: f64,
    /// Injections attempted per error kind per scene.
    pub errors_per_kind: (usize, usize),
    /// Vendor center-jitter range (m).
    pub vendor_jitter: (f64, f64),
    /// Detector center-noise range (m).
    pub detector_noise: (f64, f64),
}

impl Default for FuzzProfile {
    fn default() -> Self {
        FuzzProfile {
            duration: (7.0, 10.0),
            frame_dt: 0.2,
            ego_speed: (4.0, 9.0),
            ego_yaw_rate: (-0.04, 0.04),
            beam_count: (300, 480),
            extra_actors: (2, 8),
            occluder_prob: 0.35,
            errors_per_kind: (0, 2),
            vendor_jitter: (0.03, 0.08),
            detector_noise: (0.03, 0.07),
        }
    }
}

/// A vendor that never errs on its own: every injected label error comes
/// from the registry, keeping the audit record exact.
fn clean_vendor(jitter: f64) -> VendorProfile {
    VendorProfile {
        track_miss_base: 0.0,
        track_miss_difficulty_weight: 0.0,
        frame_miss_rate: 0.0,
        center_jitter_std: jitter,
        size_jitter_rel_std: 0.03,
        yaw_jitter_std: 0.015,
        class_flip_rate: 0.0,
        min_visible_frames: 1,
    }
}

/// A detector with calibrated noise but no spontaneous false positives,
/// duplicates, confusions, or gross errors.
fn clean_detector(noise: f64) -> DetectorProfile {
    DetectorProfile {
        clutter_rate_per_frame: 0.0,
        persistent_ghosts_per_scene: 0.0,
        duplicate_rate: 0.0,
        gross_loc_error_rate: 0.0,
        track_confusion_rate: 0.0,
        class_confusion_rate: 0.0,
        center_noise_std: noise,
        size_noise_rel_std: 0.04,
        yaw_noise_std: 0.03,
        ..DetectorProfile::internal_like()
    }
}

/// Remove actors whose trajectory overlaps an earlier-kept actor's at
/// any frame (BEV IOU above a small epsilon). Greedy in actor order, so
/// the guaranteed one-per-class cast (spawned first) survives.
fn drop_colliding_actors(world: &mut World, duration: f64, dt: f64) {
    let n_frames = (duration / dt).round().max(1.0) as usize;
    let mut kept: Vec<Actor> = Vec::with_capacity(world.actors.len());
    let mut kept_boxes: Vec<Vec<Box3>> = Vec::new();
    for actor in world.actors.drain(..) {
        let boxes: Vec<Box3> = (0..n_frames).map(|i| actor.world_box_at(i as f64 * dt)).collect();
        let clear = kept_boxes
            .iter()
            .all(|other| boxes.iter().zip(other).all(|(a, b)| loa_geom::iou_bev(a, b) <= 0.02));
        if clear {
            kept.push(actor);
            kept_boxes.push(boxes);
        }
    }
    world.actors = kept;
}

/// SplitMix64 — decorrelates per-scene streams from `(seed, index)`.
fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded procedural scenario fuzzer. The same `(seed, index)` pair
/// always produces the byte-identical scene.
#[derive(Debug)]
pub struct ScenarioFuzzer {
    pub profile: FuzzProfile,
    pub registry: InjectorRegistry,
    seed: u64,
}

impl ScenarioFuzzer {
    /// A fuzzer with the standard registry and default profile.
    pub fn new(seed: u64) -> Self {
        ScenarioFuzzer {
            profile: FuzzProfile::default(),
            registry: InjectorRegistry::standard(),
            seed,
        }
    }

    pub fn with_profile(mut self, profile: FuzzProfile) -> Self {
        self.profile = profile;
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Compose the world for scene `index` (no labels or errors yet).
    fn compose_world(&self, rng: &mut StdRng) -> (World, f64, LidarConfig) {
        let p = &self.profile;
        let duration = rng.gen_range(p.duration.0..=p.duration.1);
        let ego_speed = rng.gen_range(p.ego_speed.0..=p.ego_speed.1);
        let ego_yaw_rate = rng.gen_range(p.ego_yaw_rate.0..=p.ego_yaw_rate.1);

        // A guaranteed cast of one actor per class (so every class's
        // volume prior is learnable from any corpus) plus a random crowd.
        let mut actor_counts: Vec<(ObjectClass, usize)> =
            ObjectClass::ALL.iter().map(|&c| (c, 1)).collect();
        let extra = rng.gen_range(p.extra_actors.0..=p.extra_actors.1);
        for _ in 0..extra {
            // Weighted toward the common classes.
            let class = match rng.gen_range(0..10) {
                0..=4 => ObjectClass::Car,
                5 | 6 => ObjectClass::Pedestrian,
                7 => ObjectClass::Truck,
                8 => ObjectClass::Motorcycle,
                _ => ObjectClass::Bicycle,
            };
            if let Some(entry) = actor_counts.iter_mut().find(|(c, _)| *c == class) {
                entry.1 += 1;
            }
        }
        let cfg = WorldConfig {
            duration,
            ego_speed,
            ego_yaw_rate,
            actor_counts,
            corridor_half_width: rng.gen_range(16.0..24.0),
        };
        let mut world = World::generate(&cfg, rng);

        // Occasionally add an occluder wall of slow traffic beside the
        // ego lane (the Figure 4 situation, procedurally).
        if rng.gen_bool(p.occluder_prob) {
            let next = world.actors.iter().map(|a| a.track.0 + 1).max().unwrap_or(0);
            let side = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let speed = ego_speed * rng.gen_range(0.8..1.0);
            let (l, w, h) = ObjectClass::Car.mean_dims();
            for i in 0..rng.gen_range(3u64..6) {
                world.actors.push(Actor {
                    track: TrackId(next + i),
                    class: ObjectClass::Car,
                    dims: Size3::new(l, w, h),
                    motion: Motion::ConstantVelocity {
                        start: Vec2::new(6.0 + i as f64 * 6.5, side * 3.2),
                        velocity: Vec2::new(speed, 0.0),
                    },
                });
            }
        }

        // Worlds are sampled without collision avoidance; two actors
        // driving through each other produce naturally-inconsistent
        // bundles and merged tracks that would muddy the injected-error
        // oracle. Keep each actor only if its whole trajectory stays
        // clear of every already-kept actor.
        drop_colliding_actors(&mut world, duration, p.frame_dt);

        let lidar = LidarConfig {
            beam_count: rng.gen_range(p.beam_count.0..=p.beam_count.1),
            ..LidarConfig::default()
        };
        (world, duration, lidar)
    }

    /// Build one scene: compose a world, label and detect it cleanly,
    /// then (optionally) run the injector registry over it.
    fn build(&self, index: u64, with_errors: bool) -> SceneData {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, index));
        let p = &self.profile;
        let (world, duration, lidar) = self.compose_world(&mut rng);
        let mut frames = simulate_frames(&world, &lidar, duration, p.frame_dt);
        let vendor = clean_vendor(rng.gen_range(p.vendor_jitter.0..=p.vendor_jitter.1));
        let detector = clean_detector(rng.gen_range(p.detector_noise.0..=p.detector_noise.1));
        let vendor_outcome = label_scene(&mut frames, &vendor, &mut rng);
        let detector_outcome = run_detector(&mut frames, &detector, &mut rng);
        debug_assert!(vendor_outcome.missing_tracks.is_empty());
        debug_assert!(detector_outcome.ghost_tracks.is_empty());
        // Clean-substrate rule: drop detections of objects below the
        // visibility threshold. The detector fires on a handful of lidar
        // returns while the vendor (by design) only labels visible
        // objects; letting those through would strew unrecorded
        // missing-label lookalikes through every scene and poison the
        // oracle's denominator.
        for frame in &mut frames {
            let visible: BTreeSet<TrackId> =
                frame.gt.iter().filter(|g| g.visible).map(|g| g.track).collect();
            frame.detections.retain(|d| match d.provenance {
                DetectionProvenance::TrueObject(t) | DetectionProvenance::Duplicate(t) => {
                    visible.contains(&t)
                }
                _ => true,
            });
        }

        let kind_tag = if with_errors { "fuzz" } else { "fuzz-clean" };
        let mut scene = SceneData {
            id: format!("{kind_tag}-{index:04}-s{}", self.seed),
            frame_dt: p.frame_dt,
            frames,
            injected: InjectedErrors::default(),
        };
        if with_errors {
            let mut used = BTreeSet::new();
            for injector in self.registry.iter() {
                let n = rng.gen_range(p.errors_per_kind.0..=p.errors_per_kind.1);
                for _ in 0..n {
                    injector.inject(&mut scene, &mut used, &mut rng);
                }
            }
        }
        scene
    }

    /// Scene `index` of the corpus, with its injected error set.
    pub fn scene(&self, index: u64) -> SceneData {
        self.build(index, true)
    }

    /// A clean (error-free) scene for learning feature libraries;
    /// index-space is disjoint from [`scene`](Self::scene) output ids.
    pub fn clean_scene(&self, index: u64) -> SceneData {
        self.build(index, false)
    }

    /// The first `n` fuzzed scenes.
    pub fn corpus(&self, n: usize) -> Vec<SceneData> {
        (0..n as u64).map(|i| self.scene(i)).collect()
    }

    /// `n` clean training scenes (indices offset so they never reuse a
    /// corpus scene's stream).
    pub fn training_corpus(&self, n: usize) -> Vec<SceneData> {
        (0..n as u64).map(|i| self.clean_scene(1_000_000 + i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_corpus() {
        let a = ScenarioFuzzer::new(7).corpus(3);
        let b = ScenarioFuzzer::new(7).corpus(3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap(),
                "scene {} differs between runs",
                x.id
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioFuzzer::new(1).scene(0);
        let b = ScenarioFuzzer::new(2).scene(0);
        assert_ne!(
            serde_json::to_string(&a).unwrap().len(),
            serde_json::to_string(&b).unwrap().len()
        );
    }

    #[test]
    fn fuzzed_scenes_validate_and_carry_typed_errors() {
        let fuzzer = ScenarioFuzzer::new(11);
        let mut totals = [0usize; ErrorKind::ALL.len()];
        for scene in fuzzer.corpus(8) {
            scene.validate().unwrap();
            for (i, kind) in ErrorKind::ALL.into_iter().enumerate() {
                totals[i] += kind.count_in(&scene.injected);
            }
        }
        // Across 8 scenes with 0–2 injections per kind, every kind should
        // land at least once.
        for (i, kind) in ErrorKind::ALL.into_iter().enumerate() {
            assert!(totals[i] > 0, "no {kind} injected across the corpus");
        }
    }

    #[test]
    fn clean_scenes_have_no_errors() {
        let fuzzer = ScenarioFuzzer::new(3);
        for scene in fuzzer.training_corpus(3) {
            assert_eq!(scene.injected.label_error_count(), 0);
            assert!(scene.injected.ghost_tracks.is_empty());
            assert!(scene.injected.inconsistent_bundles.is_empty());
        }
    }

    #[test]
    fn missing_track_injection_is_observable() {
        let fuzzer = ScenarioFuzzer::new(21);
        for scene in fuzzer.corpus(6) {
            for mt in &scene.injected.missing_tracks {
                // No labels remain…
                for frame in &scene.frames {
                    assert!(!frame.human_labels.iter().any(|l| l.gt_track == mt.track));
                }
                // …but the detector evidence does.
                let detections: usize = scene
                    .frames
                    .iter()
                    .flat_map(|f| &f.detections)
                    .filter(|d| d.provenance == DetectionProvenance::TrueObject(mt.track))
                    .count();
                assert!(detections >= 8, "only {detections} detections back the missing track");
            }
        }
    }

    #[test]
    fn missing_box_leaves_detection_and_other_labels() {
        let fuzzer = ScenarioFuzzer::new(33);
        for scene in fuzzer.corpus(6) {
            for mb in &scene.injected.missing_boxes {
                let frame = &scene.frames[mb.frame.0 as usize];
                assert!(!frame.human_labels.iter().any(|l| l.gt_track == mb.track));
                assert!(frame
                    .detections
                    .iter()
                    .any(|d| d.provenance == DetectionProvenance::TrueObject(mb.track)));
                let labeled_elsewhere = scene
                    .frames
                    .iter()
                    .filter(|f| f.human_labels.iter().any(|l| l.gt_track == mb.track))
                    .count();
                assert!(labeled_elsewhere >= 4);
            }
        }
    }

    #[test]
    fn class_swap_relabels_every_frame() {
        let fuzzer = ScenarioFuzzer::new(5);
        let mut seen = 0;
        for scene in fuzzer.corpus(6) {
            for swap in &scene.injected.class_swaps {
                seen += 1;
                assert_eq!(swap.labeled_class, swap_partner(swap.true_class));
                for frame in &scene.frames {
                    for l in frame.human_labels.iter().filter(|l| l.gt_track == swap.track) {
                        assert_eq!(l.class, swap.labeled_class);
                    }
                }
                // The volume prior gap is the findability guarantee.
                let vol = |c: ObjectClass| {
                    let (l, w, h) = c.mean_dims();
                    l * w * h
                };
                let ratio = vol(swap.true_class) / vol(swap.labeled_class);
                assert!(!(1.0 / 8.0..=8.0).contains(&ratio), "swap not extreme: {ratio}");
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn ghost_track_boxes_overlap_consecutively() {
        let fuzzer = ScenarioFuzzer::new(13);
        let mut seen = 0;
        for scene in fuzzer.corpus(6) {
            for (ghost, span) in &scene.injected.ghost_tracks {
                seen += 1;
                assert!(span.len() >= 6);
                let boxes: Vec<Box3> = span
                    .iter()
                    .map(|f| {
                        scene.frames[f.0 as usize]
                            .detections
                            .iter()
                            .find(|d| d.provenance == DetectionProvenance::PersistentGhost(*ghost))
                            .unwrap()
                            .bbox
                    })
                    .collect();
                for w in boxes.windows(2) {
                    assert!(
                        loa_geom::iou_bev(&w[0], &w[1]) > 0.05,
                        "ghost boxes must overlap so the tracker links them"
                    );
                }
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn inconsistent_bundle_overlaps_label_with_extreme_volume() {
        let fuzzer = ScenarioFuzzer::new(17);
        let mut seen = 0;
        for scene in fuzzer.corpus(6) {
            for ib in &scene.injected.inconsistent_bundles {
                seen += 1;
                let frame = &scene.frames[ib.frame.0 as usize];
                let label = frame
                    .human_labels
                    .iter()
                    .find(|l| l.gt_track == ib.track)
                    .expect("label present");
                let spurious = frame
                    .detections
                    .iter()
                    .find(|d| {
                        d.provenance == DetectionProvenance::Clutter && d.class == ib.spurious_class
                    })
                    .expect("spurious box present");
                // Bundles (IOU > 0.5) but volume wildly inconsistent.
                assert!(loa_geom::iou_bev(&label.bbox, &spurious.bbox) > 0.5);
                let ratio = spurious.bbox.volume() / label.bbox.volume();
                assert!(ratio > 4.0, "volume ratio only {ratio}");
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn registry_covers_taxonomy() {
        let registry = InjectorRegistry::standard();
        assert_eq!(registry.kinds(), ErrorKind::ALL.to_vec());
        for kind in ErrorKind::ALL {
            assert!(registry.get(kind).is_some(), "{kind} missing from registry");
            assert!(!kind.name().is_empty());
            assert!(!kind.paper_figure().is_empty());
        }
        assert!(!registry.is_empty());
        assert_eq!(registry.len(), 5);
    }
}
