//! Simulated LIDAR visibility model.
//!
//! The paper's datasets are LIDAR point clouds; Fixy consumes boxes, but
//! *who gets labeled and who gets detected* is driven by LIDAR physics:
//! close unoccluded objects return many points, distant or occluded objects
//! few (the occluded motorcycle of Figure 4 is the canonical example).
//!
//! The model casts `beam_count` azimuthal rays from the sensor in the BEV
//! plane. Each ray returns a hit on the nearest box footprint it crosses
//! (objects shadow what is behind them). Per object we report the return
//! count and the occlusion fraction; the vendor and detector simulators
//! turn these into labeling / detection probabilities. Rays that hit
//! nothing are range-returns (ground/buildings are not modeled — the
//! corridor is open space, which matches the paper's bird's-eye figures).

use loa_geom::{Box3, Vec2};
use serde::{Deserialize, Serialize};

/// Sensor parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LidarConfig {
    /// Azimuthal beams per revolution (per frame).
    pub beam_count: usize,
    /// Maximum range in meters.
    pub max_range: f64,
    /// Number of vertical rings that would hit a ~1.5 m tall object; scales
    /// the per-beam return count so near objects get more points.
    pub vertical_rings: u32,
    /// Returns below this count mark an object as not visible.
    pub min_visible_points: u32,
}

impl Default for LidarConfig {
    fn default() -> Self {
        LidarConfig {
            beam_count: 900, // 0.4° azimuthal resolution
            max_range: 80.0,
            vertical_rings: 12,
            min_visible_points: 5,
        }
    }
}

/// Per-object visibility result.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Visibility {
    /// Simulated LIDAR returns on the object.
    pub points: u32,
    /// Fraction of the object's angular extent shadowed by nearer objects,
    /// in `[0, 1]`.
    pub occlusion: f64,
    /// In range, not fully shadowed, and enough returns.
    pub visible: bool,
}

/// A single simulated LIDAR return (for rendering).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LidarPoint {
    pub position: Vec2,
    /// Index of the box hit, if any (indexes the `boxes` slice passed in).
    pub hit: Option<usize>,
}

/// Result of scanning one frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanResult {
    /// Per-input-box visibility, parallel to the `boxes` argument.
    pub visibility: Vec<Visibility>,
    /// The raw returns (only filled when requested).
    pub points: Vec<LidarPoint>,
}

/// Scan ego-frame boxes from the sensor at the origin.
///
/// `keep_points` controls whether raw returns are materialized (rendering
/// wants them; the dataset generator does not).
pub fn scan(boxes: &[Box3], cfg: &LidarConfig, keep_points: bool) -> ScanResult {
    let n = boxes.len();
    let mut hits = vec![0u32; n];
    let mut shadowed = vec![0u32; n];
    let mut in_fov_beams = vec![0u32; n];
    let mut points = Vec::new();

    // Precompute footprint polygons once.
    let polys: Vec<_> = boxes.iter().map(Box3::bev_polygon).collect();

    let beam_step = std::f64::consts::TAU / cfg.beam_count as f64;
    for b in 0..cfg.beam_count {
        let theta = b as f64 * beam_step;
        let dir = Vec2::new(theta.cos(), theta.sin());
        // Nearest intersection along this ray.
        let mut best: Option<(f64, usize)> = None;
        let mut crossers: Vec<(f64, usize)> = Vec::new();
        for (i, poly) in polys.iter().enumerate() {
            if let Some(t) = ray_polygon_entry(dir, poly.vertices()) {
                if t <= cfg.max_range {
                    crossers.push((t, i));
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
        }
        if let Some((t_hit, i_hit)) = best {
            hits[i_hit] += 1;
            for &(_, i) in &crossers {
                in_fov_beams[i] += 1;
                if i != i_hit {
                    shadowed[i] += 1;
                }
            }
            if keep_points {
                points.push(LidarPoint { position: dir * t_hit, hit: Some(i_hit) });
            }
        } else if keep_points && !crossers.is_empty() {
            // Unreachable by construction (best is Some when crossers is
            // non-empty), kept for clarity.
        }
    }

    let visibility = (0..n)
        .map(|i| {
            let range = boxes[i].ground_distance_to_origin();
            // Scale azimuthal hits by how many vertical rings would see an
            // object of this height at this range (rough solid-angle term:
            // rings fall off with distance).
            let ring_factor = if range < 1.0 {
                cfg.vertical_rings as f64
            } else {
                (cfg.vertical_rings as f64 * (boxes[i].size.height / 1.5) * (15.0 / range).min(1.0))
                    .max(1.0)
            };
            let pts = (hits[i] as f64 * ring_factor).round() as u32;
            let occlusion = if in_fov_beams[i] > 0 {
                shadowed[i] as f64 / in_fov_beams[i] as f64
            } else if range <= cfg.max_range {
                // No beam crossed it at all (too small / too far) — treat
                // as fully occluded-from-measurement.
                1.0
            } else {
                1.0
            };
            let visible = range <= cfg.max_range && pts >= cfg.min_visible_points;
            Visibility { points: pts, occlusion, visible }
        })
        .collect();

    ScanResult { visibility, points }
}

/// Distance along the ray `origin=0, direction=dir` (unit) to the entry
/// point of a convex polygon, or `None` if the ray misses it.
fn ray_polygon_entry(dir: Vec2, vertices: &[Vec2]) -> Option<f64> {
    let n = vertices.len();
    if n < 3 {
        return None;
    }
    let mut best: Option<f64> = None;
    for i in 0..n {
        let a = vertices[i];
        let b = vertices[(i + 1) % n];
        // Solve 0 + t*dir = a + s*(b-a), t >= 0, s in [0,1].
        let e = b - a;
        let denom = dir.cross(e);
        if denom.abs() < 1e-12 {
            continue;
        }
        let t = a.cross(e) / denom;
        let s = a.cross(dir) / denom;
        if t >= 0.0 && (0.0..=1.0).contains(&s) {
            best = Some(best.map_or(t, |x: f64| x.min(t)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn car_at(x: f64, y: f64) -> Box3 {
        Box3::on_ground(x, y, 0.0, 4.5, 1.9, 1.6, 0.0)
    }

    #[test]
    fn ray_hits_box_ahead() {
        let b = car_at(10.0, 0.0);
        let t = ray_polygon_entry(Vec2::new(1.0, 0.0), &b.bev_corners()).unwrap();
        // Entry at the near face: x = 10 - 4.5/2 = 7.75.
        assert!((t - 7.75).abs() < 1e-9);
    }

    #[test]
    fn ray_misses_box_behind() {
        let b = car_at(10.0, 0.0);
        assert!(ray_polygon_entry(Vec2::new(-1.0, 0.0), &b.bev_corners()).is_none());
    }

    #[test]
    fn single_object_fully_visible() {
        let boxes = vec![car_at(10.0, 0.0)];
        let scan = scan(&boxes, &LidarConfig::default(), false);
        let v = scan.visibility[0];
        assert!(v.visible);
        assert_eq!(v.occlusion, 0.0);
        assert!(v.points > 50, "close car should return many points, got {}", v.points);
    }

    #[test]
    fn occluder_shadows_object_behind() {
        // A truck right in front of the sensor hides a car behind it.
        let truck = Box3::on_ground(6.0, 0.0, 0.0, 8.0, 2.6, 3.2, 0.0);
        let car = car_at(20.0, 0.0);
        let scan = scan(&[truck, car], &LidarConfig::default(), false);
        let truck_vis = scan.visibility[0];
        let car_vis = scan.visibility[1];
        assert!(truck_vis.visible);
        assert!(truck_vis.occlusion < 0.05);
        assert!(car_vis.occlusion > 0.9, "car occlusion = {}", car_vis.occlusion);
        assert!(car_vis.points < truck_vis.points / 4);
    }

    #[test]
    fn far_object_fewer_points_than_near() {
        let near = car_at(8.0, 5.0);
        let far = car_at(60.0, -5.0);
        let scan = scan(&[near, far], &LidarConfig::default(), false);
        assert!(scan.visibility[0].points > 4 * scan.visibility[1].points);
    }

    #[test]
    fn out_of_range_object_invisible() {
        let boxes = vec![car_at(200.0, 0.0)];
        let scan = scan(&boxes, &LidarConfig::default(), false);
        assert!(!scan.visibility[0].visible);
    }

    #[test]
    fn points_materialized_on_request() {
        let boxes = vec![car_at(10.0, 0.0)];
        let cfg = LidarConfig::default();
        let with = scan(&boxes, &cfg, true);
        let without = scan(&boxes, &cfg, false);
        assert!(!with.points.is_empty());
        assert!(without.points.is_empty());
        // Every materialized point lies on (near) the footprint boundary of
        // the box it hit, and in front of the sensor.
        for p in &with.points {
            assert_eq!(p.hit, Some(0));
            assert!(p.position.norm() <= cfg.max_range);
        }
    }

    #[test]
    fn empty_scene_scan() {
        let scan = scan(&[], &LidarConfig::default(), true);
        assert!(scan.visibility.is_empty());
        assert!(scan.points.is_empty());
    }

    #[test]
    fn sensor_inside_box_counts_hits() {
        // Degenerate but must not panic: box centered at the origin.
        let boxes = vec![car_at(0.0, 0.0)];
        let scan = scan(&boxes, &LidarConfig::default(), false);
        // All rays originate inside; entry t is the exit face (t >= 0), so
        // the object still registers returns.
        assert!(scan.visibility[0].points > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_occlusion_in_unit_interval(
            xs in proptest::collection::vec((3.0f64..70.0, -20.0f64..20.0), 1..8),
        ) {
            let boxes: Vec<Box3> = xs.iter().map(|&(x, y)| car_at(x, y)).collect();
            let scan = scan(&boxes, &LidarConfig::default(), false);
            for v in &scan.visibility {
                prop_assert!((0.0..=1.0).contains(&v.occlusion));
            }
        }

        #[test]
        fn prop_nearest_unobstructed_object_visible(
            x in 5.0f64..40.0,
        ) {
            // A single car straight ahead is always visible.
            let scan = scan(&[car_at(x, 0.0)], &LidarConfig::default(), false);
            prop_assert!(scan.visibility[0].visible);
        }
    }
}
