//! World and trajectory simulation.
//!
//! Generates a ground-truth world: an ego vehicle driving along a road and
//! a population of actors (moving and parked cars, trucks, pedestrians,
//! motorcycles, buses, bicycles) with class-conditional dimensions and
//! kinematics. Per frame, actor boxes are expressed in the ego frame —
//! exactly the coordinate system AV perception labels use.

use crate::class::ObjectClass;
use crate::types::TrackId;
use loa_geom::{normalize_angle, Box3, Pose2, Size3, Vec2};
use rand::prelude::*;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Motion model of one actor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Motion {
    /// Parked / standing still.
    Stationary { pos: Vec2, yaw: f64 },
    /// Straight-line constant velocity.
    ConstantVelocity { start: Vec2, velocity: Vec2 },
    /// Moves, stops for a while, moves again (traffic-like).
    StopAndGo {
        start: Vec2,
        /// Unit direction of travel.
        dir: Vec2,
        speed: f64,
        /// Seconds of motion before each stop.
        go_time: f64,
        /// Seconds of each stop.
        stop_time: f64,
    },
    /// Constant-rate turn along a circular arc.
    Turning {
        center: Vec2,
        radius: f64,
        /// Radians per second (signed).
        angular_vel: f64,
        /// Initial angle on the circle.
        phase: f64,
    },
}

impl Motion {
    /// World position and heading at time `t` (seconds).
    pub fn pose_at(&self, t: f64) -> (Vec2, f64) {
        match self {
            Motion::Stationary { pos, yaw } => (*pos, *yaw),
            Motion::ConstantVelocity { start, velocity } => {
                let yaw = if velocity.norm() > 1e-9 { velocity.azimuth() } else { 0.0 };
                (*start + *velocity * t, yaw)
            }
            Motion::StopAndGo { start, dir, speed, go_time, stop_time } => {
                let cycle = go_time + stop_time;
                let full_cycles = (t / cycle).floor();
                let in_cycle = t - full_cycles * cycle;
                let moving_time = full_cycles * go_time + in_cycle.min(*go_time);
                (*start + *dir * (speed * moving_time), dir.azimuth())
            }
            Motion::Turning { center, radius, angular_vel, phase } => {
                let theta = phase + angular_vel * t;
                let pos = *center + Vec2::new(theta.cos(), theta.sin()) * *radius;
                // Heading is tangent to the circle.
                let yaw = theta + angular_vel.signum() * std::f64::consts::FRAC_PI_2;
                (pos, normalize_angle(yaw))
            }
        }
    }

    /// Instantaneous world-frame speed at time `t` (m/s), by finite
    /// difference (matches what a transition feature would estimate).
    pub fn speed_at(&self, t: f64, dt: f64) -> f64 {
        let (p0, _) = self.pose_at(t);
        let (p1, _) = self.pose_at(t + dt);
        p0.distance(p1) / dt
    }
}

/// One simulated actor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Actor {
    pub track: TrackId,
    pub class: ObjectClass,
    pub dims: Size3,
    pub motion: Motion,
}

impl Actor {
    /// The actor's world-frame box at time `t`.
    pub fn world_box_at(&self, t: f64) -> Box3 {
        let (pos, yaw) = self.motion.pose_at(t);
        Box3::on_ground(
            pos.x,
            pos.y,
            0.0,
            self.dims.length,
            self.dims.width,
            self.dims.height,
            yaw,
        )
    }
}

/// Ego vehicle motion: constant speed along a (possibly gently curving)
/// path starting at the world origin heading +x.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EgoMotion {
    pub speed: f64,
    /// Constant yaw rate (rad/s); 0 = straight.
    pub yaw_rate: f64,
}

impl EgoMotion {
    /// Ego world pose at time `t`.
    pub fn pose_at(&self, t: f64) -> Pose2 {
        if self.yaw_rate.abs() < 1e-9 {
            return Pose2::new(Vec2::new(self.speed * t, 0.0), 0.0);
        }
        // Circular arc of radius v/ω starting at origin heading +x.
        let r = self.speed / self.yaw_rate;
        let theta = self.yaw_rate * t;
        let pos = Vec2::new(r * theta.sin(), r * (1.0 - theta.cos()));
        Pose2::new(pos, theta)
    }
}

/// Parameters for world generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Scene duration in seconds.
    pub duration: f64,
    /// Ego speed (m/s).
    pub ego_speed: f64,
    /// Ego yaw rate (rad/s).
    pub ego_yaw_rate: f64,
    /// Number of actors to spawn per class.
    pub actor_counts: Vec<(ObjectClass, usize)>,
    /// Half-width of the corridor around the ego path actors spawn in.
    pub corridor_half_width: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            duration: 25.0,
            ego_speed: 8.0,
            ego_yaw_rate: 0.0,
            actor_counts: vec![
                (ObjectClass::Car, 18),
                (ObjectClass::Truck, 4),
                (ObjectClass::Pedestrian, 8),
                (ObjectClass::Motorcycle, 3),
                (ObjectClass::Bus, 1),
                (ObjectClass::Bicycle, 2),
            ],
            corridor_half_width: 22.0,
        }
    }
}

/// A generated world: ego motion plus actors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    pub ego: EgoMotion,
    pub actors: Vec<Actor>,
}

impl World {
    /// Generate a world from a config and RNG.
    pub fn generate(cfg: &WorldConfig, rng: &mut impl Rng) -> World {
        let ego = EgoMotion { speed: cfg.ego_speed, yaw_rate: cfg.ego_yaw_rate };
        let mut actors = Vec::new();
        let mut next_track = 0u64;
        // Actors spawn along the corridor the ego will traverse.
        let path_len = cfg.ego_speed * cfg.duration;
        for &(class, count) in &cfg.actor_counts {
            for _ in 0..count {
                let track = TrackId(next_track);
                next_track += 1;
                actors.push(spawn_actor(track, class, path_len, cfg.corridor_half_width, rng));
            }
        }
        World { ego, actors }
    }

    /// Ground-truth ego pose and ego-frame actor boxes at time `t`.
    pub fn snapshot(&self, t: f64) -> (Pose2, Vec<(TrackId, ObjectClass, Box3)>) {
        let ego_pose = self.ego.pose_at(t);
        let inv = ego_pose.inverse();
        let boxes = self
            .actors
            .iter()
            .map(|a| {
                let wb = a.world_box_at(t);
                let center_bev = inv.transform(wb.center.bev());
                let ego_box = Box3::new(
                    loa_geom::Vec3::new(center_bev.x, center_bev.y, wb.center.z),
                    wb.size,
                    normalize_angle(wb.yaw - ego_pose.yaw),
                );
                (a.track, a.class, ego_box)
            })
            .collect();
        (ego_pose, boxes)
    }
}

/// Sample dimensions for a class (truncated at ±2.5σ and floored).
fn sample_dims(class: ObjectClass, rng: &mut impl Rng) -> Size3 {
    let (l, w, h) = class.mean_dims();
    let rel = class.dims_rel_std();
    let mut draw = |mean: f64| {
        let normal = Normal::new(mean, mean * rel).expect("positive std");
        let mut v = normal.sample(rng);
        let lo = mean * (1.0 - 2.5 * rel);
        let hi = mean * (1.0 + 2.5 * rel);
        if !(lo..=hi).contains(&v) {
            v = v.clamp(lo, hi);
        }
        v.max(0.2)
    };
    Size3::new(draw(l), draw(w), draw(h))
}

fn spawn_actor(
    track: TrackId,
    class: ObjectClass,
    path_len: f64,
    half_width: f64,
    rng: &mut impl Rng,
) -> Actor {
    let dims = sample_dims(class, rng);
    // Spawn location: along the ego path with lateral offset. Road lanes at
    // |y| <= 7, sidewalks beyond.
    let x = rng.gen_range(-20.0..path_len + 40.0);
    let is_vru = matches!(class, ObjectClass::Pedestrian | ObjectClass::Bicycle);
    let y = if is_vru {
        // Sidewalks, occasionally crossing.
        let side = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        side * rng.gen_range(7.5..half_width.max(8.5))
    } else if rng.gen_bool(0.25) {
        // Parked lane.
        let side = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        side * rng.gen_range(6.0..7.5)
    } else {
        // Travel lanes.
        let side = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        side * rng.gen_range(1.5..6.0)
    };
    let pos = Vec2::new(x, y);

    let stationary = rng.gen_bool(class.stationary_prob());
    let motion = if stationary {
        // Parked along the road direction.
        let yaw = if rng.gen_bool(0.5) { 0.0 } else { std::f64::consts::PI };
        Motion::Stationary { pos, yaw }
    } else {
        let (speed_mean, speed_std) = class.speed_profile();
        let speed = Normal::new(speed_mean, speed_std)
            .expect("positive std")
            .sample(rng)
            .clamp(0.5, speed_mean + 3.0 * speed_std);
        let crossing = is_vru && rng.gen_bool(0.3);
        let dir = if crossing {
            // Cross the road.
            Vec2::new(0.0, if pos.y > 0.0 { -1.0 } else { 1.0 })
        } else {
            // With or against ego direction.
            Vec2::new(if rng.gen_bool(0.65) { 1.0 } else { -1.0 }, 0.0)
        };
        match rng.gen_range(0..10) {
            0 | 1 if !is_vru => Motion::StopAndGo {
                start: pos,
                dir,
                speed,
                go_time: rng.gen_range(3.0..8.0),
                stop_time: rng.gen_range(2.0..5.0),
            },
            2 if !is_vru => {
                let radius = rng.gen_range(15.0..60.0);
                let angular_vel = (speed / radius) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                Motion::Turning {
                    // Place the spawn point on the circle at angle `phase`.
                    center: pos - Vec2::new(phase.cos(), phase.sin()) * radius,
                    radius,
                    angular_vel,
                    phase,
                }
            }
            _ => Motion::ConstantVelocity { start: pos, velocity: dir * speed },
        }
    };

    Actor { track, class, dims, motion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn stationary_motion_does_not_move() {
        let m = Motion::Stationary { pos: Vec2::new(3.0, 4.0), yaw: 0.5 };
        let (p0, y0) = m.pose_at(0.0);
        let (p1, y1) = m.pose_at(10.0);
        assert_eq!(p0, p1);
        assert_eq!(y0, y1);
        assert!(m.speed_at(1.0, 0.1) < 1e-9);
    }

    #[test]
    fn constant_velocity_speed_matches() {
        let m = Motion::ConstantVelocity { start: Vec2::ZERO, velocity: Vec2::new(3.0, 4.0) };
        let (p, yaw) = m.pose_at(2.0);
        assert!((p - Vec2::new(6.0, 8.0)).norm() < 1e-12);
        assert!((yaw - (4.0f64).atan2(3.0)).abs() < 1e-12);
        assert!((m.speed_at(1.0, 0.2) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stop_and_go_pauses() {
        let m = Motion::StopAndGo {
            start: Vec2::ZERO,
            dir: Vec2::new(1.0, 0.0),
            speed: 10.0,
            go_time: 2.0,
            stop_time: 3.0,
        };
        // Moves for 2 s (20 m), stops for 3 s, then moves again.
        let (p_end_go, _) = m.pose_at(2.0);
        assert!((p_end_go.x - 20.0).abs() < 1e-9);
        let (p_mid_stop, _) = m.pose_at(4.0);
        assert!((p_mid_stop.x - 20.0).abs() < 1e-9);
        let (p_resumed, _) = m.pose_at(6.0);
        assert!((p_resumed.x - 30.0).abs() < 1e-9);
    }

    #[test]
    fn turning_stays_on_circle() {
        let m = Motion::Turning {
            center: Vec2::new(10.0, 0.0),
            radius: 5.0,
            angular_vel: 0.4,
            phase: 0.0,
        };
        for i in 0..20 {
            let (p, _) = m.pose_at(i as f64 * 0.5);
            assert!((p.distance(Vec2::new(10.0, 0.0)) - 5.0).abs() < 1e-9);
        }
        // Tangential speed = ω r.
        assert!((m.speed_at(1.0, 0.01) - 2.0).abs() < 0.01);
    }

    #[test]
    fn ego_straight_path() {
        let ego = EgoMotion { speed: 8.0, yaw_rate: 0.0 };
        let p = ego.pose_at(3.0);
        assert!((p.translation.x - 24.0).abs() < 1e-12);
        assert_eq!(p.translation.y, 0.0);
        assert_eq!(p.yaw, 0.0);
    }

    #[test]
    fn ego_curved_path_preserves_speed() {
        let ego = EgoMotion { speed: 8.0, yaw_rate: 0.05 };
        let dt = 0.01;
        let p0 = ego.pose_at(1.0);
        let p1 = ego.pose_at(1.0 + dt);
        let speed = p0.translation.distance(p1.translation) / dt;
        assert!((speed - 8.0).abs() < 0.01);
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let cfg = WorldConfig::default();
        let w1 = World::generate(&cfg, &mut StdRng::seed_from_u64(9));
        let w2 = World::generate(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(w1.actors.len(), w2.actors.len());
        for (a, b) in w1.actors.iter().zip(&w2.actors) {
            assert_eq!(a.track, b.track);
            assert_eq!(a.class, b.class);
            assert!((a.dims.volume() - b.dims.volume()).abs() < 1e-12);
        }
        let w3 = World::generate(&cfg, &mut StdRng::seed_from_u64(10));
        let same = w1
            .actors
            .iter()
            .zip(&w3.actors)
            .all(|(a, b)| (a.dims.volume() - b.dims.volume()).abs() < 1e-12);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn generated_actor_counts_match_config() {
        let cfg = WorldConfig::default();
        let w = World::generate(&cfg, &mut StdRng::seed_from_u64(1));
        let total: usize = cfg.actor_counts.iter().map(|&(_, n)| n).sum();
        assert_eq!(w.actors.len(), total);
        for &(class, count) in &cfg.actor_counts {
            let got = w.actors.iter().filter(|a| a.class == class).count();
            assert_eq!(got, count, "{class}");
        }
        // Track ids are unique.
        let mut ids: Vec<u64> = w.actors.iter().map(|a| a.track.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), w.actors.len());
    }

    #[test]
    fn snapshot_boxes_are_ego_frame() {
        let mut w = World::generate(&WorldConfig::default(), &mut StdRng::seed_from_u64(2));
        // Pin one actor right in front of the ego's position at t=1 (ego at
        // x=8): world position (18, 0) should be ego-frame (10, 0).
        w.actors[0] = Actor {
            track: TrackId(999),
            class: ObjectClass::Car,
            dims: Size3::new(4.5, 1.9, 1.6),
            motion: Motion::Stationary { pos: Vec2::new(18.0, 0.0), yaw: 0.0 },
        };
        let (ego_pose, boxes) = w.snapshot(1.0);
        assert!((ego_pose.translation.x - 8.0).abs() < 1e-12);
        let (_, _, b) = boxes.iter().find(|(t, _, _)| *t == TrackId(999)).unwrap();
        assert!((b.center.x - 10.0).abs() < 1e-9);
        assert!(b.center.y.abs() < 1e-9);
    }

    #[test]
    fn dims_sampling_within_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for class in ObjectClass::ALL {
            let (l, w, h) = class.mean_dims();
            let rel = class.dims_rel_std();
            for _ in 0..200 {
                let d = sample_dims(class, &mut rng);
                assert!(d.is_valid());
                assert!(d.length >= l * (1.0 - 2.5 * rel) - 1e-9);
                assert!(d.length <= l * (1.0 + 2.5 * rel) + 1e-9);
                assert!(d.width <= w * (1.0 + 2.5 * rel) + 1e-9);
                assert!(d.height <= h * (1.0 + 2.5 * rel) + 1e-9);
            }
        }
    }

    #[test]
    fn world_box_sits_on_ground() {
        let actor = Actor {
            track: TrackId(0),
            class: ObjectClass::Car,
            dims: Size3::new(4.0, 2.0, 1.5),
            motion: Motion::ConstantVelocity { start: Vec2::ZERO, velocity: Vec2::new(5.0, 0.0) },
        };
        let b = actor.world_box_at(2.0);
        let (zmin, _) = b.z_interval();
        assert!(zmin.abs() < 1e-12);
        assert!((b.center.x - 10.0).abs() < 1e-12);
    }
}
