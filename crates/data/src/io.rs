//! JSON persistence for generated scenes.
//!
//! The evaluation harness saves the datasets it generated alongside the
//! result tables, so every number in EXPERIMENTS.md is regenerable from a
//! seed *or* reloadable byte-for-byte.

use crate::types::SceneData;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Errors from scene persistence.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Json(serde_json::Error),
    /// The loaded scene failed structural validation.
    Invalid(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Invalid(msg) => write!(f, "invalid scene: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Save a scene as JSON.
pub fn save_scene(scene: &SceneData, path: &Path) -> Result<(), IoError> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer(file, scene)?;
    Ok(())
}

/// Load and validate a scene from JSON.
pub fn load_scene(path: &Path) -> Result<SceneData, IoError> {
    let file = BufReader::new(File::open(path)?);
    let scene: SceneData = serde_json::from_reader(file)?;
    scene.validate().map_err(IoError::Invalid)?;
    Ok(scene)
}

/// Save a whole dataset, one file per scene, into `dir` (created if
/// missing). Returns the written paths.
pub fn save_dataset(scenes: &[SceneData], dir: &Path) -> Result<Vec<std::path::PathBuf>, IoError> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(scenes.len());
    for scene in scenes {
        let path = dir.join(format!("{}.json", scene.id));
        save_scene(scene, &path)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{generate_scene, DatasetProfile};

    fn tiny_scene(seed: u64) -> SceneData {
        let mut cfg = DatasetProfile::LyftLike.scene_config();
        cfg.world.duration = 2.0;
        cfg.lidar.beam_count = 180;
        generate_scene(&cfg, &format!("io-test-{seed}"), seed)
    }

    #[test]
    fn roundtrip_scene() {
        let dir = std::env::temp_dir().join("loa_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scene.json");
        let scene = tiny_scene(5);
        save_scene(&scene, &path).unwrap();
        let loaded = load_scene(&path).unwrap();
        assert_eq!(loaded.id, scene.id);
        assert_eq!(loaded.frames.len(), scene.frames.len());
        assert_eq!(
            loaded.injected.missing_tracks.len(),
            scene.injected.missing_tracks.len()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("loa_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        assert!(matches!(load_scene(&path), Err(IoError::Json(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_invalid_scene() {
        let dir = std::env::temp_dir().join("loa_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("invalid.json");
        // Structurally valid JSON, semantically invalid scene (no frames).
        std::fs::write(
            &path,
            serde_json::json!({
                "id": "bad",
                "frame_dt": 0.2,
                "frames": [],
                "injected": {
                    "missing_tracks": [],
                    "missing_boxes": [],
                    "class_flips": [],
                    "class_swaps": [],
                    "ghost_tracks": [],
                    "inconsistent_bundles": []
                }
            })
            .to_string(),
        )
        .unwrap();
        assert!(matches!(load_scene(&path), Err(IoError::Invalid(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loads_legacy_scene_without_taxonomy_fields() {
        // Scene JSON written before the fuzzer's typed taxonomy existed
        // has no class_swaps / inconsistent_bundles keys; it must still
        // load, with those records empty.
        let dir = std::env::temp_dir().join("loa_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        let mut scene = tiny_scene(6);
        scene.injected.class_swaps.clear();
        scene.injected.inconsistent_bundles.clear();
        let mut json = serde_json::to_string(&scene).unwrap();
        json = json
            .replace("\"class_swaps\":[],", "")
            .replace("\"inconsistent_bundles\":[],", "")
            .replace(",\"inconsistent_bundles\":[]", "");
        assert!(!json.contains("class_swaps"), "fixture still carries the new field");
        assert!(!json.contains("inconsistent_bundles"));
        std::fs::write(&path, json).unwrap();
        let loaded = load_scene(&path).unwrap();
        assert_eq!(loaded.frames.len(), scene.frames.len());
        assert!(loaded.injected.class_swaps.is_empty());
        assert!(loaded.injected.inconsistent_bundles.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = Path::new("/nonexistent/definitely/missing.json");
        assert!(matches!(load_scene(path), Err(IoError::Io(_))));
    }

    #[test]
    fn save_dataset_writes_one_file_per_scene() {
        let dir = std::env::temp_dir().join("loa_data_io_dataset_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenes = vec![tiny_scene(1), tiny_scene(2)];
        let paths = save_dataset(&scenes, &dir).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.exists());
            load_scene(p).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
