//! Object classes and their physical priors.
//!
//! The paper's evaluation focuses on *"the common classes of car, truck,
//! pedestrian, and motorcycle"*; the simulator additionally models buses and
//! bicycles so that class-conditional distributions have non-trivial overlap
//! structure (a bicycle's box volume is close to a motorcycle's — exactly
//! the confusions real detectors make).

use serde::{Deserialize, Serialize};

/// Object classes annotated in the synthetic datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectClass {
    Car,
    Truck,
    Pedestrian,
    Motorcycle,
    Bus,
    Bicycle,
}

impl ObjectClass {
    /// All classes, in stable index order.
    pub const ALL: [ObjectClass; 6] = [
        ObjectClass::Car,
        ObjectClass::Truck,
        ObjectClass::Pedestrian,
        ObjectClass::Motorcycle,
        ObjectClass::Bus,
        ObjectClass::Bicycle,
    ];

    /// The four classes the paper's evaluation reports on.
    pub const EVALUATED: [ObjectClass; 4] =
        [ObjectClass::Car, ObjectClass::Truck, ObjectClass::Pedestrian, ObjectClass::Motorcycle];

    /// Stable dense index (categorical distributions, arrays).
    pub fn index(self) -> usize {
        match self {
            ObjectClass::Car => 0,
            ObjectClass::Truck => 1,
            ObjectClass::Pedestrian => 2,
            ObjectClass::Motorcycle => 3,
            ObjectClass::Bus => 4,
            ObjectClass::Bicycle => 5,
        }
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(idx: usize) -> Option<ObjectClass> {
        Self::ALL.get(idx).copied()
    }

    pub fn name(self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Truck => "truck",
            ObjectClass::Pedestrian => "pedestrian",
            ObjectClass::Motorcycle => "motorcycle",
            ObjectClass::Bus => "bus",
            ObjectClass::Bicycle => "bicycle",
        }
    }

    /// Mean box dimensions (length, width, height) in meters, roughly
    /// matching the Lyft Level 5 per-class statistics.
    pub fn mean_dims(self) -> (f64, f64, f64) {
        match self {
            ObjectClass::Car => (4.6, 1.9, 1.7),
            ObjectClass::Truck => (8.0, 2.6, 3.2),
            ObjectClass::Pedestrian => (0.8, 0.8, 1.8),
            ObjectClass::Motorcycle => (2.2, 0.9, 1.5),
            ObjectClass::Bus => (12.0, 2.9, 3.4),
            ObjectClass::Bicycle => (1.8, 0.6, 1.4),
        }
    }

    /// Relative per-dimension standard deviation of box dimensions.
    pub fn dims_rel_std(self) -> f64 {
        match self {
            ObjectClass::Car => 0.08,
            ObjectClass::Truck => 0.18,
            ObjectClass::Pedestrian => 0.10,
            ObjectClass::Motorcycle => 0.10,
            ObjectClass::Bus => 0.12,
            ObjectClass::Bicycle => 0.10,
        }
    }

    /// Typical moving speed (mean, std) in m/s for a moving instance.
    pub fn speed_profile(self) -> (f64, f64) {
        match self {
            ObjectClass::Car => (9.0, 3.5),
            ObjectClass::Truck => (8.0, 3.0),
            ObjectClass::Pedestrian => (1.4, 0.4),
            ObjectClass::Motorcycle => (10.0, 4.0),
            ObjectClass::Bus => (7.5, 2.5),
            ObjectClass::Bicycle => (4.5, 1.5),
        }
    }

    /// Probability that a spawned instance of this class is stationary
    /// (parked car, standing pedestrian).
    pub fn stationary_prob(self) -> f64 {
        match self {
            ObjectClass::Car => 0.45,
            ObjectClass::Truck => 0.35,
            ObjectClass::Pedestrian => 0.25,
            ObjectClass::Motorcycle => 0.30,
            ObjectClass::Bus => 0.15,
            ObjectClass::Bicycle => 0.20,
        }
    }

    /// The classes a detector confuses this class with (used by the
    /// class-confusion error injector).
    pub fn confusable_with(self) -> &'static [ObjectClass] {
        match self {
            ObjectClass::Car => &[ObjectClass::Truck],
            ObjectClass::Truck => &[ObjectClass::Car, ObjectClass::Bus],
            ObjectClass::Pedestrian => &[ObjectClass::Bicycle],
            ObjectClass::Motorcycle => &[ObjectClass::Bicycle],
            ObjectClass::Bus => &[ObjectClass::Truck],
            ObjectClass::Bicycle => &[ObjectClass::Motorcycle, ObjectClass::Pedestrian],
        }
    }
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for class in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_index(class.index()), Some(class));
        }
        assert_eq!(ObjectClass::from_index(99), None);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for class in ObjectClass::ALL {
            assert!(seen.insert(class.index()));
            assert!(class.index() < ObjectClass::ALL.len());
        }
    }

    #[test]
    fn evaluated_is_subset_of_all() {
        for class in ObjectClass::EVALUATED {
            assert!(ObjectClass::ALL.contains(&class));
        }
    }

    #[test]
    fn physical_priors_are_sane() {
        for class in ObjectClass::ALL {
            let (l, w, h) = class.mean_dims();
            assert!(l > 0.0 && w > 0.0 && h > 0.0, "{class}");
            assert!(l >= w, "{class}: length should dominate width");
            let (speed, std) = class.speed_profile();
            assert!(speed > 0.0 && std > 0.0);
            assert!((0.0..1.0).contains(&class.stationary_prob()));
            assert!(class.dims_rel_std() > 0.0 && class.dims_rel_std() < 0.5);
        }
    }

    #[test]
    fn truck_bigger_than_car_bigger_than_pedestrian() {
        let vol = |c: ObjectClass| {
            let (l, w, h) = c.mean_dims();
            l * w * h
        };
        assert!(vol(ObjectClass::Truck) > vol(ObjectClass::Car));
        assert!(vol(ObjectClass::Car) > vol(ObjectClass::Motorcycle));
        assert!(vol(ObjectClass::Motorcycle) > vol(ObjectClass::Pedestrian) * 0.5);
    }

    #[test]
    fn confusions_are_symmetric_enough() {
        // Every confusable class must itself be a real class; no
        // self-confusion.
        for class in ObjectClass::ALL {
            for &other in class.confusable_with() {
                assert_ne!(class, other);
            }
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ObjectClass::Car.to_string(), "car");
        assert_eq!(ObjectClass::Motorcycle.to_string(), "motorcycle");
    }
}
