//! Handcrafted scenario builders reproducing the situations in the paper's
//! figures. Each returns a fully-formed [`SceneData`] whose injected-error
//! record points at the interesting element, plus a focus handle for
//! rendering.
//!
//! | Builder | Paper figure | Situation |
//! |---|---|---|
//! | [`missing_truck`] | Fig. 1 | truck within ~25 m of the AV missed by the vendor |
//! | [`occluded_motorcycle`] | Fig. 4 | motorcycle visible < 1 s due to occlusion, missed |
//! | [`trailing_car_missing_label`] | Fig. 6 | car trailing the AV, first-frame label missing |
//! | [`ghost_track`] | Fig. 5 / Fig. 9 | erratic persistent model ghost |
//! | [`person_truck_bundle`] | Fig. 7 | person and truck boxes overlapping (inconsistent bundle) |
//! | [`missing_cars_in_motion`] | Fig. 8 | several moving cars near the AV, all unlabeled |
//!
//! # Scenario taxonomy
//!
//! The [`crate::fuzz`] module generalizes these one-off builders into a
//! procedural fuzzer whose injector registry spans the full typed error
//! taxonomy. Each fuzzed error kind descends from the figure(s) its
//! handcrafted ancestor reproduced:
//!
//! | [`crate::fuzz::ErrorKind`] | Audit record | Handcrafted ancestor(s) | Paper figure(s) | Found by |
//! |---|---|---|---|---|
//! | `MissingTrack` | [`crate::types::MissingTrack`] | [`missing_truck`], [`occluded_motorcycle`], [`missing_cars_in_motion`] | Figs. 1, 4, 8 | `MissingTrackFinder` |
//! | `MissingBox` | [`crate::types::MissingBox`] | [`trailing_car_missing_label`] | Fig. 6 | `MissingObsFinder` |
//! | `ClassSwap` | [`crate::types::ClassSwap`] | — (new: whole-track gross class error) | §8.1 vendor errors | `LabelAuditFinder` |
//! | `GhostTrack` | ghost span in [`crate::types::InjectedErrors`] | [`ghost_track`] | Figs. 5, 9 | `ModelErrorFinder` |
//! | `InconsistentBundle` | [`crate::types::InconsistentBundle`] | [`person_truck_bundle`] | Fig. 7 | `BundleAuditFinder` |

use crate::class::ObjectClass;
use crate::detector::{run_detector, DetectorProfile};
use crate::lidar::LidarConfig;
use crate::scene::simulate_frames;
use crate::types::{
    Detection, DetectionProvenance, FrameId, InjectedErrors, MissingBox, SceneData, TrackId,
};
use crate::vendor::{label_scene, VendorProfile};
use crate::world::{Actor, EgoMotion, Motion, World};
use loa_geom::{Box3, Size3, Vec2};
use rand::prelude::*;

/// A built scenario: the scene plus the element the figure highlights.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub scene: SceneData,
    /// The ground-truth track the figure is about (if any).
    pub focus_track: Option<TrackId>,
    /// Frames to render.
    pub focus_frames: Vec<FrameId>,
    pub description: String,
}

/// An error-free vendor for scripted labeling.
fn perfect_vendor() -> VendorProfile {
    VendorProfile {
        track_miss_base: 0.0,
        track_miss_difficulty_weight: 0.0,
        frame_miss_rate: 0.0,
        center_jitter_std: 0.05,
        size_jitter_rel_std: 0.02,
        yaw_jitter_std: 0.01,
        class_flip_rate: 0.0,
        min_visible_frames: 1,
    }
}

/// A detector with no false positives for scripted scenes, but realistic
/// localization noise (so association occasionally leaves a model-only
/// bundle inside a human track — the distractor candidates the Section
/// 8.3 ranking competes against).
fn clean_detector() -> DetectorProfile {
    DetectorProfile {
        clutter_rate_per_frame: 0.0,
        persistent_ghosts_per_scene: 0.0,
        duplicate_rate: 0.0,
        gross_loc_error_rate: 0.0,
        track_confusion_rate: 0.0,
        class_confusion_rate: 0.0,
        center_noise_std: 0.16,
        size_noise_rel_std: 0.06,
        yaw_noise_std: 0.05,
        ..DetectorProfile::internal_like()
    }
}

fn background_actors(next_track: &mut u64) -> Vec<Actor> {
    // A stable cast of labeled background objects along the road.
    let mut actors = Vec::new();
    let mut spawn = |class: ObjectClass, x: f64, y: f64, vx: f64| {
        let (l, w, h) = class.mean_dims();
        let track = TrackId(*next_track);
        *next_track += 1;
        let motion = if vx.abs() < 1e-9 {
            Motion::Stationary { pos: Vec2::new(x, y), yaw: 0.0 }
        } else {
            Motion::ConstantVelocity { start: Vec2::new(x, y), velocity: Vec2::new(vx, 0.0) }
        };
        Actor { track, class, dims: Size3::new(l, w, h), motion }
    };
    actors.push(spawn(ObjectClass::Car, 15.0, 3.5, 7.0));
    actors.push(spawn(ObjectClass::Car, 30.0, -3.5, -6.0));
    actors.push(spawn(ObjectClass::Car, 25.0, 6.8, 0.0)); // parked
    actors.push(spawn(ObjectClass::Pedestrian, 20.0, 9.0, 0.0));
    actors.push(spawn(ObjectClass::Car, 55.0, 3.5, 8.0));
    actors
}

use crate::fuzz::strip_track_labels;

fn assemble(world: World, duration: f64, dt: f64, seed: u64, id: &str) -> SceneData {
    let lidar = LidarConfig::default();
    let mut frames = simulate_frames(&world, &lidar, duration, dt);
    let mut rng = StdRng::seed_from_u64(seed);
    let vendor_outcome = label_scene(&mut frames, &perfect_vendor(), &mut rng);
    let detector_outcome = run_detector(&mut frames, &clean_detector(), &mut rng);
    SceneData {
        id: id.to_string(),
        frame_dt: dt,
        frames,
        injected: InjectedErrors {
            missing_tracks: vendor_outcome.missing_tracks,
            missing_boxes: vendor_outcome.missing_boxes,
            class_flips: vendor_outcome.class_flips,
            ghost_tracks: detector_outcome.ghost_tracks,
            ..Default::default()
        },
    }
}

/// Figure 1: a truck within ~25 m of the AV that the vendor missed while
/// labeling the surrounding cars.
pub fn missing_truck(seed: u64) -> Scenario {
    let mut next = 0u64;
    let mut actors = background_actors(&mut next);
    let truck_track = TrackId(next);
    let (l, w, h) = ObjectClass::Truck.mean_dims();
    actors.push(Actor {
        track: truck_track,
        class: ObjectClass::Truck,
        dims: Size3::new(l, w, h),
        motion: Motion::ConstantVelocity {
            start: Vec2::new(22.0, -3.5),
            velocity: Vec2::new(6.5, 0.0),
        },
    });
    let world = World { ego: EgoMotion { speed: 7.0, yaw_rate: 0.0 }, actors };
    let mut scene = assemble(world, 10.0, 0.2, seed, "figure1-missing-truck");
    strip_track_labels(&mut scene, truck_track, ObjectClass::Truck);
    Scenario {
        scene,
        focus_track: Some(truck_track),
        focus_frames: vec![FrameId(10)],
        description: "Truck within 25 m of the AV missed by human labels (Figure 1)".into(),
    }
}

/// Figure 4: a motorcycle close to the AV but occluded by other vehicles,
/// visible for under a second — and missed by the vendor.
pub fn occluded_motorcycle(seed: u64) -> Scenario {
    let mut next = 0u64;
    let mut actors = Vec::new();
    // A wall of slow traffic between the ego and the motorcycle lane.
    for i in 0..4 {
        let (l, w, h) = ObjectClass::Car.mean_dims();
        actors.push(Actor {
            track: TrackId(next),
            class: ObjectClass::Car,
            dims: Size3::new(l, w, h),
            motion: Motion::ConstantVelocity {
                start: Vec2::new(8.0 + i as f64 * 6.0, 3.2),
                velocity: Vec2::new(6.8, 0.0),
            },
        });
        next += 1;
    }
    // The motorcycle rides in the gap beyond the wall, slightly faster, so
    // it only peeks through between cars for a few frames.
    let moto_track = TrackId(next);
    next += 1;
    let (ml, mw, mh) = ObjectClass::Motorcycle.mean_dims();
    actors.push(Actor {
        track: moto_track,
        class: ObjectClass::Motorcycle,
        dims: Size3::new(ml, mw, mh),
        motion: Motion::ConstantVelocity {
            start: Vec2::new(6.0, 6.4),
            velocity: Vec2::new(9.5, 0.0),
        },
    });
    // One labeled car on the other side for context.
    let (cl, cw, ch) = ObjectClass::Car.mean_dims();
    actors.push(Actor {
        track: TrackId(next),
        class: ObjectClass::Car,
        dims: Size3::new(cl, cw, ch),
        motion: Motion::ConstantVelocity {
            start: Vec2::new(30.0, -3.5),
            velocity: Vec2::new(-7.0, 0.0),
        },
    });
    let world = World { ego: EgoMotion { speed: 7.0, yaw_rate: 0.0 }, actors };
    let mut scene = assemble(world, 8.0, 0.2, seed, "figure4-occluded-motorcycle");
    strip_track_labels(&mut scene, moto_track, ObjectClass::Motorcycle);
    let focus_frames = scene
        .frames
        .iter()
        .filter(|f| f.gt.iter().any(|g| g.track == moto_track && g.visible))
        .map(|f| f.index)
        .collect();
    Scenario {
        scene,
        focus_track: Some(moto_track),
        focus_frames,
        description:
            "Motorcycle occluded by traffic, visible <1 s, missed by human labels (Figure 4)".into(),
    }
}

/// Figure 6: a car trailing the AV whose first-frame label is missing (the
/// rest of the track is labeled).
pub fn trailing_car_missing_label(seed: u64) -> Scenario {
    let mut next = 0u64;
    let mut actors = background_actors(&mut next);
    let car_track = TrackId(next);
    let (l, w, h) = ObjectClass::Car.mean_dims();
    actors.push(Actor {
        track: car_track,
        class: ObjectClass::Car,
        dims: Size3::new(l, w, h),
        // Trails the ego at the same speed, 12 m behind.
        motion: Motion::ConstantVelocity {
            start: Vec2::new(-12.0, 0.0),
            velocity: Vec2::new(7.0, 0.0),
        },
    });
    let world = World { ego: EgoMotion { speed: 7.0, yaw_rate: 0.0 }, actors };
    let mut scene = assemble(world, 8.0, 0.2, seed, "figure6-trailing-car");
    // Drop exactly the first frame's label for the trailing car.
    let first_labeled = scene
        .frames
        .iter()
        .position(|f| f.human_labels.iter().any(|l| l.gt_track == car_track));
    if let Some(idx) = first_labeled {
        scene.frames[idx].human_labels.retain(|l| l.gt_track != car_track);
        scene.injected.missing_boxes.push(MissingBox {
            track: car_track,
            class: ObjectClass::Car,
            frame: FrameId(idx as u32),
        });
    }
    let focus = first_labeled.map(|i| FrameId(i as u32));
    Scenario {
        scene,
        focus_track: Some(car_track),
        focus_frames: focus.into_iter().collect(),
        description: "Car trailing the AV with its first-frame label missing (Figure 6)".into(),
    }
}

/// Figures 5 and 9: a persistent, geometrically inconsistent model ghost —
/// predictions that overlap across frames but teleport and change volume.
pub fn ghost_track(seed: u64) -> Scenario {
    let mut next = 0u64;
    let actors = background_actors(&mut next);
    let world = World { ego: EgoMotion { speed: 7.0, yaw_rate: 0.0 }, actors };
    let mut scene = assemble(world, 8.0, 0.2, seed, "figure9-ghost-track");

    // Inject the ghost by hand for a deterministic, dramatic figure.
    let ghost = crate::types::GhostId(0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b9);
    let mut pos = Vec2::new(18.0, -6.0);
    let mut frames_hit = Vec::new();
    let span_start = 10usize;
    let span_len = 8usize;
    for k in 0..span_len {
        let idx = span_start + k;
        if idx >= scene.frames.len() {
            break;
        }
        pos += Vec2::new(rng.gen_range(-3.0..4.5), rng.gen_range(-3.0..3.0));
        let scale = rng.gen_range(0.5..2.0);
        let bbox = Box3::on_ground(
            pos.x,
            pos.y,
            0.0,
            4.6 * scale,
            1.9 * scale,
            1.7,
            rng.gen_range(-3.0..3.0),
        );
        scene.frames[idx].detections.push(Detection {
            bbox,
            class: ObjectClass::Car,
            confidence: 0.9,
            provenance: DetectionProvenance::PersistentGhost(ghost),
            class_correct: true,
            localization_error: false,
        });
        frames_hit.push(FrameId(idx as u32));
    }
    scene.injected.ghost_tracks.push((ghost, frames_hit.clone()));
    Scenario {
        scene,
        focus_track: None,
        focus_frames: frames_hit,
        description:
            "Persistent model ghost: overlapping but inconsistent predictions (Figures 5/9)".into(),
    }
}

/// Figure 7: a pedestrian box and a truck box highly overlapping in the
/// same frame — a bundle whose observations are strongly inconsistent in
/// volume.
pub fn person_truck_bundle(seed: u64) -> Scenario {
    let mut next = 0u64;
    let mut actors = background_actors(&mut next);
    let ped_track = TrackId(next);
    let (pl, pw, ph) = ObjectClass::Pedestrian.mean_dims();
    actors.push(Actor {
        track: ped_track,
        class: ObjectClass::Pedestrian,
        dims: Size3::new(pl, pw, ph),
        motion: Motion::Stationary { pos: Vec2::new(18.0, 2.0), yaw: 0.0 },
    });
    let world = World { ego: EgoMotion { speed: 5.0, yaw_rate: 0.0 }, actors };
    let mut scene = assemble(world, 6.0, 0.2, seed, "figure7-person-truck-bundle");

    // The model predicts a truck-sized box on top of the pedestrian in one
    // frame: the bundle (human pedestrian label + model truck box) is
    // geometrically consistent in position but wildly inconsistent in
    // volume and class.
    let frame_idx = 10.min(scene.frames.len() - 1);
    let ped_box = scene.frames[frame_idx]
        .gt
        .iter()
        .find(|g| g.track == ped_track)
        .map(|g| g.bbox)
        .expect("pedestrian exists");
    let (tl, tw, th) = ObjectClass::Truck.mean_dims();
    scene.frames[frame_idx].detections.push(Detection {
        bbox: Box3::new(ped_box.center, Size3::new(tl, tw, th), ped_box.yaw),
        class: ObjectClass::Truck,
        confidence: 0.6,
        provenance: DetectionProvenance::Clutter,
        class_correct: true,
        localization_error: false,
    });
    Scenario {
        scene,
        focus_track: Some(ped_track),
        focus_frames: vec![FrameId(frame_idx as u32)],
        description: "Person and truck boxes overlap but are inconsistent in volume (Figure 7)"
            .into(),
    }
}

/// Figure 8: several cars in motion missed by the vendor — *"vehicles in
/// motion are the most important to detect"*. Three moving cars within
/// ~20 m of the AV, all unlabeled.
pub fn missing_cars_in_motion(seed: u64) -> Scenario {
    let mut next = 0u64;
    let mut actors = background_actors(&mut next);
    let (l, w, h) = ObjectClass::Car.mean_dims();
    let mut missing = Vec::new();
    // Relative motion keeps each car within ~20 m of the ego (7 m/s) at
    // some point of the 10 s scene.
    for (x, y, vx) in [(14.0, -3.5, 6.0), (24.0, 3.5, 5.5), (9.0, 6.8, 7.5)] {
        let track = TrackId(next);
        next += 1;
        actors.push(Actor {
            track,
            class: ObjectClass::Car,
            dims: Size3::new(l, w, h),
            motion: Motion::ConstantVelocity {
                start: Vec2::new(x, y),
                velocity: Vec2::new(vx, 0.0),
            },
        });
        missing.push(track);
    }
    let world = World { ego: EgoMotion { speed: 7.0, yaw_rate: 0.0 }, actors };
    let mut scene = assemble(world, 10.0, 0.2, seed, "figure8-missing-cars");
    for track in &missing {
        strip_track_labels(&mut scene, *track, ObjectClass::Car);
    }
    Scenario {
        scene,
        focus_track: Some(missing[0]),
        focus_frames: vec![FrameId(8)],
        description: "Several cars in motion near the AV missed by human labels (Figure 8)".into(),
    }
}

/// All figure scenarios, keyed by figure label.
pub fn all_scenarios(seed: u64) -> Vec<(&'static str, Scenario)> {
    vec![
        ("figure1", missing_truck(seed)),
        ("figure4", occluded_motorcycle(seed)),
        ("figure6", trailing_car_missing_label(seed)),
        ("figure5_9", ghost_track(seed)),
        ("figure7", person_truck_bundle(seed)),
        ("figure8", missing_cars_in_motion(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_truck_scenario_shape() {
        let s = missing_truck(1);
        s.scene.validate().unwrap();
        let truck = s.focus_track.unwrap();
        // Truck is visible and unlabeled; it's in the injected record.
        assert!(s.scene.injected.missing_tracks.iter().any(|m| m.track == truck));
        let visible_count = s
            .scene
            .frames
            .iter()
            .filter(|f| f.gt.iter().any(|g| g.track == truck && g.visible))
            .count();
        assert!(visible_count > 10, "truck visible in {visible_count} frames");
        for frame in &s.scene.frames {
            assert!(!frame.human_labels.iter().any(|l| l.gt_track == truck));
        }
        // The truck comes within 25 m of the AV at some point (Figure 1).
        let min_dist = s
            .scene
            .frames
            .iter()
            .flat_map(|f| f.gt.iter())
            .filter(|g| g.track == truck)
            .map(|g| g.bbox.ground_distance_to_origin())
            .fold(f64::INFINITY, f64::min);
        assert!(min_dist < 25.0, "truck min distance {min_dist}");
    }

    #[test]
    fn occluded_motorcycle_is_briefly_visible() {
        let s = occluded_motorcycle(2);
        s.scene.validate().unwrap();
        let moto = s.focus_track.unwrap();
        let visible_frames = s
            .scene
            .frames
            .iter()
            .filter(|f| f.gt.iter().any(|g| g.track == moto && g.visible))
            .count();
        let total = s.scene.frames.len();
        assert!(visible_frames > 0, "motorcycle never visible");
        assert!(
            visible_frames < total / 2,
            "motorcycle visible in {visible_frames}/{total} frames — not occluded enough"
        );
        // And it's recorded as missing.
        assert!(s.scene.injected.missing_tracks.iter().any(|m| m.track == moto));
    }

    #[test]
    fn trailing_car_has_single_missing_box() {
        let s = trailing_car_missing_label(3);
        s.scene.validate().unwrap();
        let car = s.focus_track.unwrap();
        let missing: Vec<_> = s
            .scene
            .injected
            .missing_boxes
            .iter()
            .filter(|m| m.track == car)
            .collect();
        assert_eq!(missing.len(), 1);
        let missing_frame = missing[0].frame;
        // That frame has no label for the car but some later frame does.
        let f = &s.scene.frames[missing_frame.0 as usize];
        assert!(!f.human_labels.iter().any(|l| l.gt_track == car));
        let labeled_later = s
            .scene
            .frames
            .iter()
            .skip(missing_frame.0 as usize + 1)
            .any(|f| f.human_labels.iter().any(|l| l.gt_track == car));
        assert!(labeled_later);
    }

    #[test]
    fn ghost_track_is_inconsistent() {
        let s = ghost_track(4);
        s.scene.validate().unwrap();
        assert_eq!(s.scene.injected.ghost_tracks.len(), 1);
        let (ghost, span) = &s.scene.injected.ghost_tracks[0];
        assert!(span.len() >= 5);
        let volumes: Vec<f64> = span
            .iter()
            .map(|fid| {
                s.scene.frames[fid.0 as usize]
                    .detections
                    .iter()
                    .find(|d| d.provenance == DetectionProvenance::PersistentGhost(*ghost))
                    .unwrap()
                    .bbox
                    .volume()
            })
            .collect();
        let max = volumes.iter().copied().fold(f64::MIN, f64::max);
        let min = volumes.iter().copied().fold(f64::MAX, f64::min);
        assert!(max / min > 2.0, "ghost volumes {volumes:?}");
        // High confidence: the uncertainty-sampling blind spot.
        for fid in span {
            let d = s.scene.frames[fid.0 as usize]
                .detections
                .iter()
                .find(|d| d.provenance == DetectionProvenance::PersistentGhost(*ghost))
                .unwrap();
            assert!(d.confidence >= 0.9);
        }
    }

    #[test]
    fn person_truck_bundle_overlaps() {
        let s = person_truck_bundle(5);
        s.scene.validate().unwrap();
        let frame = &s.scene.frames[s.focus_frames[0].0 as usize];
        let ped = frame
            .human_labels
            .iter()
            .find(|l| l.gt_track == s.focus_track.unwrap())
            .expect("pedestrian labeled");
        let truck_det = frame
            .detections
            .iter()
            .find(|d| d.class == ObjectClass::Truck && d.provenance == DetectionProvenance::Clutter)
            .expect("truck clutter box");
        // Overlapping but wildly different volume.
        assert!(loa_geom::iou_bev(&ped.bbox, &truck_det.bbox) > 0.0);
        assert!(truck_det.bbox.volume() / ped.bbox.volume() > 10.0);
    }

    #[test]
    fn all_scenarios_build_and_validate() {
        let scenarios = all_scenarios(9);
        assert_eq!(scenarios.len(), 6);
        for (name, scenario) in scenarios {
            scenario.scene.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!scenario.description.is_empty());
        }
    }

    #[test]
    fn missing_cars_in_motion_are_moving_and_near() {
        let s = missing_cars_in_motion(13);
        s.scene.validate().unwrap();
        assert_eq!(s.scene.injected.missing_tracks.len(), 3);
        for mt in &s.scene.injected.missing_tracks {
            // Every missing car is unlabeled everywhere…
            for frame in &s.scene.frames {
                assert!(!frame.human_labels.iter().any(|l| l.gt_track == mt.track));
            }
            // …in motion, and near the AV at some point (Figure 8's point:
            // "vehicles in motion are the most important to detect").
            let mut min_dist = f64::INFINITY;
            let mut centers = Vec::new();
            for frame in &s.scene.frames {
                if let Some(g) = frame.gt.iter().find(|g| g.track == mt.track) {
                    min_dist = min_dist.min(g.bbox.ground_distance_to_origin());
                    centers.push(frame.ego_pose.transform(g.bbox.center.bev()));
                }
            }
            assert!(min_dist < 20.0, "car too far: {min_dist}");
            let travel = centers.first().unwrap().distance(*centers.last().unwrap());
            assert!(travel > 10.0, "car barely moved: {travel}");
        }
    }
}
