//! Synthetic AV perception dataset substrate for the Fixy reproduction.
//!
//! Replaces the paper's two proprietary resources — the Lyft Level 5
//! perception dataset and the internal TRI dataset, plus their labeling
//! vendors and LIDAR detectors — with a fully controlled simulator:
//!
//! * [`world`] — ego + actor trajectory simulation with class-conditional
//!   physical priors,
//! * [`lidar`] — angular-occlusion LIDAR visibility model (return counts,
//!   occlusion fractions),
//! * [`vendor`] — human-label simulator with injected error classes
//!   (entirely-missing tracks, per-frame misses, jitter, class flips),
//! * [`detector`] — LIDAR-model simulator (distance/occlusion-driven
//!   misses, localization noise, confidence calibration, clutter,
//!   persistent inconsistent ghosts, duplicate boxes, class confusion),
//! * [`scene`] — dataset profiles ([`DatasetProfile::LyftLike`],
//!   [`DatasetProfile::InternalLike`]) and scene/dataset generation,
//! * [`scenarios`] — handcrafted scenario builders for the paper's figures,
//! * [`io`] — JSON persistence.
//!
//! Every injected error is recorded in [`InjectedErrors`], giving the
//! evaluation harness the exact audit the paper needed human experts for.

pub mod class;
pub mod detector;
pub mod fuzz;
pub mod io;
pub mod lidar;
pub mod scenarios;
pub mod scene;
pub mod types;
pub mod vendor;
pub mod world;

pub use class::ObjectClass;
pub use detector::DetectorProfile;
pub use fuzz::{ErrorKind, FuzzProfile, InjectorRegistry, ScenarioFuzzer};
pub use lidar::{LidarConfig, Visibility};
pub use scene::{generate_dataset, generate_scene, DatasetProfile, SceneConfig};
pub use types::{
    ClassFlip, ClassSwap, Detection, DetectionProvenance, Frame, FrameId, GhostId, GtBox,
    InconsistentBundle, InjectedErrors, LabeledBox, MissingBox, MissingTrack, ObservationSource,
    SceneData, TrackId,
};
pub use vendor::VendorProfile;
