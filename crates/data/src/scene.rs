//! Scene and dataset generation: the pipeline world → LIDAR → vendor →
//! detector, with the two dataset profiles used by the evaluation.

use crate::detector::{run_detector, DetectorProfile};
use crate::lidar::{scan, LidarConfig};
use crate::types::{Frame, FrameId, GtBox, InjectedErrors, SceneData};
use crate::vendor::{label_scene, VendorProfile};
use crate::world::{World, WorldConfig};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Full configuration for one scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneConfig {
    pub world: WorldConfig,
    pub lidar: LidarConfig,
    pub vendor: VendorProfile,
    pub detector: DetectorProfile,
    /// Seconds between frames.
    pub frame_dt: f64,
}

/// The two dataset profiles of the paper's evaluation (Section 8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetProfile {
    /// Lyft Level 5-like: 25 s scenes at 5 Hz, noisy vendor, public-model
    /// detector with poor calibration.
    LyftLike,
    /// Internal-dataset-like: 15 s scenes at 10 Hz, cleaner vendor,
    /// calibrated detector. Note the deliberately different sampling rate
    /// and scene length — the paper stresses that *"the class labels,
    /// sampling rate, and physical sensor layout differ between the two
    /// datasets"*.
    InternalLike,
}

impl DatasetProfile {
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::LyftLike => "lyft-like",
            DatasetProfile::InternalLike => "internal-like",
        }
    }

    /// The scene configuration for this profile.
    pub fn scene_config(self) -> SceneConfig {
        match self {
            DatasetProfile::LyftLike => SceneConfig {
                world: WorldConfig { duration: 25.0, ..WorldConfig::default() },
                lidar: LidarConfig::default(),
                vendor: VendorProfile::lyft_like(),
                detector: DetectorProfile::lyft_like(),
                frame_dt: 0.2, // 5 Hz
            },
            DatasetProfile::InternalLike => SceneConfig {
                world: WorldConfig { duration: 15.0, ..WorldConfig::default() },
                lidar: LidarConfig {
                    beam_count: 1200, // denser sensor
                    ..LidarConfig::default()
                },
                vendor: VendorProfile::internal_like(),
                detector: DetectorProfile::internal_like(),
                frame_dt: 0.1, // 10 Hz
            },
        }
    }

    /// Number of scenes the paper evaluates on for this profile.
    pub fn paper_scene_count(self) -> usize {
        match self {
            DatasetProfile::LyftLike => 46,
            DatasetProfile::InternalLike => 13,
        }
    }
}

/// Simulate ground truth + visibility frames for a world (no labels or
/// detections yet).
pub fn simulate_frames(world: &World, lidar: &LidarConfig, duration: f64, dt: f64) -> Vec<Frame> {
    let n_frames = (duration / dt).round().max(1.0) as usize;
    let mut frames = Vec::with_capacity(n_frames);
    for i in 0..n_frames {
        let t = i as f64 * dt;
        let (ego_pose, boxes) = world.snapshot(t);
        let bare: Vec<_> = boxes.iter().map(|(_, _, b)| *b).collect();
        let scan_result = scan(&bare, lidar, false);
        let gt: Vec<GtBox> = boxes
            .iter()
            .zip(&scan_result.visibility)
            .map(|(&(track, class, bbox), vis)| GtBox {
                track,
                class,
                bbox,
                lidar_points: vis.points,
                occlusion: vis.occlusion,
                visible: vis.visible,
            })
            .collect();
        frames.push(Frame {
            index: FrameId(i as u32),
            timestamp: t,
            ego_pose,
            gt,
            human_labels: Vec::new(),
            detections: Vec::new(),
        });
    }
    frames
}

/// Generate one complete scene.
pub fn generate_scene(cfg: &SceneConfig, id: &str, seed: u64) -> SceneData {
    let mut rng = StdRng::seed_from_u64(seed);
    let world = World::generate(&cfg.world, &mut rng);
    let mut frames = simulate_frames(&world, &cfg.lidar, cfg.world.duration, cfg.frame_dt);
    let vendor_outcome = label_scene(&mut frames, &cfg.vendor, &mut rng);
    let detector_outcome = run_detector(&mut frames, &cfg.detector, &mut rng);
    let injected = InjectedErrors {
        missing_tracks: vendor_outcome.missing_tracks,
        missing_boxes: vendor_outcome.missing_boxes,
        class_flips: vendor_outcome.class_flips,
        ghost_tracks: detector_outcome.ghost_tracks,
        ..Default::default()
    };
    SceneData { id: id.to_string(), frame_dt: cfg.frame_dt, frames, injected }
}

/// Generate a dataset of `n` scenes for a profile; scene `i` uses seed
/// `base_seed + i`.
pub fn generate_dataset(profile: DatasetProfile, n: usize, base_seed: u64) -> Vec<SceneData> {
    let cfg = profile.scene_config();
    (0..n)
        .map(|i| {
            let seed = base_seed + i as u64;
            generate_scene(&cfg, &format!("{}-{:03}-s{}", profile.name(), i, seed), seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DetectionProvenance;

    fn small_config(profile: DatasetProfile) -> SceneConfig {
        // Shrink for test speed: 6 s, fewer beams.
        let mut cfg = profile.scene_config();
        cfg.world.duration = 6.0;
        cfg.lidar.beam_count = 360;
        cfg
    }

    #[test]
    fn generated_scene_is_valid() {
        let cfg = small_config(DatasetProfile::LyftLike);
        let scene = generate_scene(&cfg, "t-0", 42);
        scene.validate().unwrap();
        assert_eq!(scene.frame_count(), 30); // 6 s at 5 Hz
        assert!((scene.duration() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config(DatasetProfile::LyftLike);
        let a = generate_scene(&cfg, "x", 7);
        let b = generate_scene(&cfg, "x", 7);
        assert_eq!(a.frames.len(), b.frames.len());
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa.human_labels.len(), fb.human_labels.len());
            assert_eq!(fa.detections.len(), fb.detections.len());
        }
        assert_eq!(a.injected.missing_tracks.len(), b.injected.missing_tracks.len());
    }

    #[test]
    fn scene_has_all_three_views() {
        let cfg = small_config(DatasetProfile::LyftLike);
        let scene = generate_scene(&cfg, "v", 11);
        let total_gt: usize = scene.frames.iter().map(|f| f.visible_gt().count()).sum();
        let total_labels: usize = scene.frames.iter().map(|f| f.human_labels.len()).sum();
        let total_dets: usize = scene.frames.iter().map(|f| f.detections.len()).sum();
        assert!(total_gt > 50, "gt {total_gt}");
        assert!(total_labels > 30, "labels {total_labels}");
        assert!(total_dets > 30, "dets {total_dets}");
        // Labels never exceed visible ground truth.
        assert!(total_labels <= total_gt);
    }

    #[test]
    fn injected_errors_consistent_with_frames() {
        // Any missing track must have zero labels; ghost ids must appear.
        let cfg = small_config(DatasetProfile::LyftLike);
        for seed in 0..5 {
            let scene = generate_scene(&cfg, "c", seed);
            for mt in &scene.injected.missing_tracks {
                for frame in &scene.frames {
                    assert!(
                        !frame.human_labels.iter().any(|l| l.gt_track == mt.track),
                        "missed track {:?} has labels (seed {seed})",
                        mt.track
                    );
                }
            }
            for (ghost, span) in &scene.injected.ghost_tracks {
                assert!(!span.is_empty());
                let any = scene.frames.iter().any(|f| {
                    f.detections
                        .iter()
                        .any(|d| d.provenance == DetectionProvenance::PersistentGhost(*ghost))
                });
                assert!(any);
            }
        }
    }

    #[test]
    fn lyft_profile_has_more_missing_tracks_than_internal() {
        let mut lyft_missing = 0usize;
        let mut internal_missing = 0usize;
        for seed in 0..6 {
            let scene = generate_scene(&small_config(DatasetProfile::LyftLike), "l", seed);
            lyft_missing += scene.injected.missing_tracks.len();
            let scene = generate_scene(&small_config(DatasetProfile::InternalLike), "i", seed);
            internal_missing += scene.injected.missing_tracks.len();
        }
        assert!(
            lyft_missing > internal_missing,
            "lyft {lyft_missing} vs internal {internal_missing}"
        );
    }

    #[test]
    fn dataset_generation_produces_distinct_scenes() {
        // Use the tiny config through generate_scene directly to keep the
        // test fast, mirroring generate_dataset's seeding scheme.
        let cfg = small_config(DatasetProfile::LyftLike);
        let scenes: Vec<SceneData> = (0..3)
            .map(|i| generate_scene(&cfg, &format!("d-{i}"), 100 + i as u64))
            .collect();
        assert_eq!(scenes.len(), 3);
        let counts: Vec<usize> = scenes
            .iter()
            .map(|s| s.frames.iter().map(|f| f.human_labels.len()).sum())
            .collect();
        assert!(
            counts.windows(2).any(|w| w[0] != w[1]),
            "scenes identical: {counts:?}"
        );
    }

    #[test]
    fn profile_metadata() {
        assert_eq!(DatasetProfile::LyftLike.paper_scene_count(), 46);
        assert_eq!(DatasetProfile::InternalLike.paper_scene_count(), 13);
        assert_eq!(DatasetProfile::LyftLike.name(), "lyft-like");
        // Lyft: 5 Hz; internal: 10 Hz.
        assert!((DatasetProfile::LyftLike.scene_config().frame_dt - 0.2).abs() < 1e-12);
        assert!((DatasetProfile::InternalLike.scene_config().frame_dt - 0.1).abs() < 1e-12);
    }
}
