//! Human-label vendor simulator.
//!
//! *"Vendors that provide labels are not always accurate, which is in
//! contrast to the large body of work that assumes datasets are gold"*
//! (Section 2). This module produces vendor labels from ground truth with
//! the paper's observed error classes injected at configurable rates:
//!
//! * **entirely-missed tracks** — the most egregious error (Figure 1, the
//!   truck within 25 m); the probability of missing a track grows with its
//!   difficulty (few LIDAR points, short visibility, heavy occlusion),
//! * **per-frame misses** inside otherwise-labeled tracks (Figure 6),
//! * **geometric jitter** — human boxes are not pixel-perfect,
//! * **class flips** — rare, between confusable classes.

use crate::class::ObjectClass;
use crate::types::{ClassFlip, Frame, FrameId, LabeledBox, MissingBox, MissingTrack, TrackId};
use loa_geom::{normalize_angle, Box3, Size3, Vec3};
use rand::prelude::*;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Vendor behavior parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VendorProfile {
    /// Base probability that an easy, clearly visible track is missed
    /// entirely.
    pub track_miss_base: f64,
    /// Additional miss probability for difficult tracks (scaled by a
    /// difficulty score in `[0, 1]`).
    pub track_miss_difficulty_weight: f64,
    /// Probability that a single frame's box is dropped from a labeled
    /// track (Section 8.3's missing observations; rare).
    pub frame_miss_rate: f64,
    /// Standard deviation of center jitter in meters.
    pub center_jitter_std: f64,
    /// Relative standard deviation of extent jitter.
    pub size_jitter_rel_std: f64,
    /// Standard deviation of yaw jitter in radians.
    pub yaw_jitter_std: f64,
    /// Probability of labeling a track with a confusable class.
    pub class_flip_rate: f64,
    /// Tracks visible in fewer than this many frames are not expected to be
    /// labeled (too ephemeral to count as vendor errors).
    pub min_visible_frames: u32,
}

impl VendorProfile {
    /// Noisy vendor, Lyft-like: a substantial fraction of hard tracks
    /// missed.
    pub fn lyft_like() -> Self {
        VendorProfile {
            track_miss_base: 0.06,
            track_miss_difficulty_weight: 0.50,
            frame_miss_rate: 0.004,
            center_jitter_std: 0.15,
            size_jitter_rel_std: 0.05,
            yaw_jitter_std: 0.03,
            class_flip_rate: 0.01,
            min_visible_frames: 3,
        }
    }

    /// Cleaner vendor, internal-dataset-like (labels were audited).
    pub fn internal_like() -> Self {
        VendorProfile {
            track_miss_base: 0.025,
            track_miss_difficulty_weight: 0.30,
            frame_miss_rate: 0.002,
            center_jitter_std: 0.08,
            size_jitter_rel_std: 0.03,
            yaw_jitter_std: 0.015,
            class_flip_rate: 0.004,
            min_visible_frames: 3,
        }
    }
}

/// Per-track summary used to decide miss probability.
#[derive(Debug, Clone)]
struct TrackStats {
    class: ObjectClass,
    visible_frames: Vec<FrameId>,
    mean_points: f64,
    mean_occlusion: f64,
    min_distance: f64,
}

/// The vendor's output: labels are written into the frames; the injected
/// errors are returned for the audit record.
#[derive(Debug, Default)]
pub struct VendorOutcome {
    pub missing_tracks: Vec<MissingTrack>,
    pub missing_boxes: Vec<MissingBox>,
    pub class_flips: Vec<ClassFlip>,
}

/// Simulate the labeling vendor over a scene's frames (which must already
/// carry ground truth + visibility).
pub fn label_scene(
    frames: &mut [Frame],
    profile: &VendorProfile,
    rng: &mut impl Rng,
) -> VendorOutcome {
    let stats = collect_track_stats(frames);
    let mut outcome = VendorOutcome::default();

    // Decide per-track: miss entirely? flip class?
    let mut missed: BTreeSet<TrackId> = BTreeSet::new();
    let mut flipped: BTreeMap<TrackId, ObjectClass> = BTreeMap::new();
    for (&track, st) in &stats {
        if (st.visible_frames.len() as u32) < profile.min_visible_frames {
            // Too ephemeral: vendor not expected to label; not an error
            // either way. Skip labeling it (conservative vendor).
            missed.insert(track);
            continue;
        }
        let difficulty = track_difficulty(st);
        let p_miss = (profile.track_miss_base + profile.track_miss_difficulty_weight * difficulty)
            .clamp(0.0, 0.95);
        if rng.gen_bool(p_miss) {
            missed.insert(track);
            outcome.missing_tracks.push(MissingTrack {
                track,
                class: st.class,
                visible_frames: st.visible_frames.clone(),
            });
            continue;
        }
        if rng.gen_bool(profile.class_flip_rate) {
            let options = st.class.confusable_with();
            if !options.is_empty() {
                let flip = options[rng.gen_range(0..options.len())];
                flipped.insert(track, flip);
            }
        }
    }

    // Emit labels frame by frame.
    let center_jitter =
        Normal::new(0.0, profile.center_jitter_std.max(1e-9)).expect("positive std");
    let yaw_jitter = Normal::new(0.0, profile.yaw_jitter_std.max(1e-9)).expect("positive std");
    for frame in frames.iter_mut() {
        let mut labels = Vec::new();
        for g in &frame.gt {
            if !g.visible || missed.contains(&g.track) {
                continue;
            }
            // Ephemeral tracks were put into `missed` above, so visibility
            // here implies the track is labeled somewhere.
            if rng.gen_bool(profile.frame_miss_rate) {
                outcome.missing_boxes.push(MissingBox {
                    track: g.track,
                    class: g.class,
                    frame: frame.index,
                });
                continue;
            }
            let labeled_class = flipped.get(&g.track).copied().unwrap_or(g.class);
            if labeled_class != g.class {
                outcome.class_flips.push(ClassFlip {
                    track: g.track,
                    frame: frame.index,
                    true_class: g.class,
                    labeled_class,
                });
            }
            let bbox =
                jitter_box(&g.bbox, &center_jitter, profile.size_jitter_rel_std, &yaw_jitter, rng);
            labels.push(LabeledBox { bbox, class: labeled_class, gt_track: g.track });
        }
        frame.human_labels = labels;
    }
    outcome
}

/// Difficulty in `[0, 1]`: few points, heavy occlusion, far away, or barely
/// visible all push toward 1.
fn track_difficulty(st: &TrackStats) -> f64 {
    let point_term = (-st.mean_points / 40.0).exp(); // few points → 1
    let occ_term = st.mean_occlusion;
    let dist_term = (st.min_distance / 80.0).clamp(0.0, 1.0);
    let brevity_term = (-(st.visible_frames.len() as f64) / 20.0).exp();
    (0.40 * point_term + 0.25 * occ_term + 0.15 * dist_term + 0.20 * brevity_term).clamp(0.0, 1.0)
}

fn collect_track_stats(frames: &[Frame]) -> BTreeMap<TrackId, TrackStats> {
    let mut map: BTreeMap<TrackId, TrackStats> = BTreeMap::new();
    for frame in frames {
        for g in &frame.gt {
            if !g.visible {
                continue;
            }
            let entry = map.entry(g.track).or_insert_with(|| TrackStats {
                class: g.class,
                visible_frames: Vec::new(),
                mean_points: 0.0,
                mean_occlusion: 0.0,
                min_distance: f64::INFINITY,
            });
            entry.visible_frames.push(frame.index);
            entry.mean_points += g.lidar_points as f64;
            entry.mean_occlusion += g.occlusion;
            entry.min_distance = entry.min_distance.min(g.bbox.ground_distance_to_origin());
        }
    }
    for st in map.values_mut() {
        let n = st.visible_frames.len().max(1) as f64;
        st.mean_points /= n;
        st.mean_occlusion /= n;
    }
    map
}

fn jitter_box(
    bbox: &Box3,
    center_jitter: &Normal<f64>,
    size_rel_std: f64,
    yaw_jitter: &Normal<f64>,
    rng: &mut impl Rng,
) -> Box3 {
    let size_jitter = Normal::new(1.0, size_rel_std.max(1e-9)).expect("positive std");
    let cx = bbox.center.x + center_jitter.sample(rng);
    let cy = bbox.center.y + center_jitter.sample(rng);
    let cz = bbox.center.z + 0.3 * center_jitter.sample(rng);
    let l = (bbox.size.length * size_jitter.sample(rng)).max(0.2);
    let w = (bbox.size.width * size_jitter.sample(rng)).max(0.2);
    let h = (bbox.size.height * size_jitter.sample(rng)).max(0.2);
    let yaw = normalize_angle(bbox.yaw + yaw_jitter.sample(rng));
    Box3::new(Vec3::new(cx, cy, cz), Size3::new(l, w, h), yaw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GtBox;
    use loa_geom::Pose2;
    use rand::rngs::StdRng;

    /// Build frames with `n_tracks` cars, each visible in all frames with
    /// the given point counts.
    fn mk_frames(n_frames: u32, n_tracks: u64, points: u32) -> Vec<Frame> {
        (0..n_frames)
            .map(|i| Frame {
                index: FrameId(i),
                timestamp: i as f64 * 0.2,
                ego_pose: Pose2::identity(),
                gt: (0..n_tracks)
                    .map(|t| GtBox {
                        track: TrackId(t),
                        class: ObjectClass::Car,
                        bbox: Box3::on_ground(
                            10.0 + t as f64 * 6.0,
                            (t % 3) as f64 * 4.0 - 4.0,
                            0.0,
                            4.5,
                            1.9,
                            1.6,
                            0.0,
                        ),
                        lidar_points: points,
                        occlusion: 0.0,
                        visible: true,
                    })
                    .collect(),
                human_labels: vec![],
                detections: vec![],
            })
            .collect()
    }

    #[test]
    fn perfect_vendor_labels_everything() {
        let mut frames = mk_frames(10, 5, 200);
        let profile = VendorProfile {
            track_miss_base: 0.0,
            track_miss_difficulty_weight: 0.0,
            frame_miss_rate: 0.0,
            center_jitter_std: 0.0,
            size_jitter_rel_std: 0.0,
            yaw_jitter_std: 0.0,
            class_flip_rate: 0.0,
            min_visible_frames: 1,
        };
        let outcome = label_scene(&mut frames, &profile, &mut StdRng::seed_from_u64(1));
        assert!(outcome.missing_tracks.is_empty());
        assert!(outcome.missing_boxes.is_empty());
        assert!(outcome.class_flips.is_empty());
        for frame in &frames {
            assert_eq!(frame.human_labels.len(), 5);
        }
    }

    #[test]
    fn always_missing_vendor_labels_nothing() {
        let mut frames = mk_frames(10, 4, 200);
        let mut profile = VendorProfile::lyft_like();
        profile.track_miss_base = 0.95;
        profile.track_miss_difficulty_weight = 0.0;
        let outcome = label_scene(&mut frames, &profile, &mut StdRng::seed_from_u64(7));
        // With p=0.95 per track, expect most of the 4 tracks missed.
        assert!(outcome.missing_tracks.len() >= 2);
        let labeled: usize = frames.iter().map(|f| f.human_labels.len()).sum();
        let missed_ids: BTreeSet<TrackId> =
            outcome.missing_tracks.iter().map(|m| m.track).collect();
        // No labels for missed tracks.
        for frame in &frames {
            for l in &frame.human_labels {
                assert!(!missed_ids.contains(&l.gt_track));
            }
        }
        assert_eq!(labeled, (4 - missed_ids.len()) * 10);
    }

    #[test]
    fn difficulty_increases_miss_probability() {
        // Hard tracks (few points, occluded) should be missed far more
        // often than easy ones, with everything else equal.
        let profile = VendorProfile::lyft_like();
        let trials = 300;
        let mut hard_missed = 0;
        let mut easy_missed = 0;
        for seed in 0..trials {
            let mut easy = mk_frames(20, 1, 300);
            let out = label_scene(&mut easy, &profile, &mut StdRng::seed_from_u64(seed));
            if !out.missing_tracks.is_empty() {
                easy_missed += 1;
            }
            let mut hard = mk_frames(4, 1, 8);
            for f in hard.iter_mut() {
                for g in f.gt.iter_mut() {
                    g.occlusion = 0.7;
                }
            }
            let out = label_scene(&mut hard, &profile, &mut StdRng::seed_from_u64(seed + 10_000));
            if !out.missing_tracks.is_empty() {
                hard_missed += 1;
            }
        }
        assert!(
            hard_missed > 3 * easy_missed.max(1),
            "hard {hard_missed} vs easy {easy_missed}"
        );
    }

    #[test]
    fn frame_misses_recorded_and_absent_from_labels() {
        let mut frames = mk_frames(50, 2, 200);
        let mut profile = VendorProfile::lyft_like();
        profile.track_miss_base = 0.0;
        profile.track_miss_difficulty_weight = 0.0;
        profile.frame_miss_rate = 0.2;
        let outcome = label_scene(&mut frames, &profile, &mut StdRng::seed_from_u64(3));
        assert!(!outcome.missing_boxes.is_empty());
        for mb in &outcome.missing_boxes {
            let frame = &frames[mb.frame.0 as usize];
            assert!(
                !frame.human_labels.iter().any(|l| l.gt_track == mb.track),
                "missing box for track {:?} still labeled in frame {:?}",
                mb.track,
                mb.frame
            );
        }
    }

    #[test]
    fn ephemeral_tracks_not_counted_as_errors() {
        let mut frames = mk_frames(2, 1, 200); // only 2 visible frames
        let profile = VendorProfile::lyft_like(); // min_visible_frames = 3
        let outcome = label_scene(&mut frames, &profile, &mut StdRng::seed_from_u64(4));
        assert!(outcome.missing_tracks.is_empty());
        // And it is not labeled either.
        assert!(frames.iter().all(|f| f.human_labels.is_empty()));
    }

    #[test]
    fn invisible_objects_never_labeled() {
        let mut frames = mk_frames(10, 1, 200);
        for f in frames.iter_mut() {
            for g in f.gt.iter_mut() {
                g.visible = false;
            }
        }
        let mut profile = VendorProfile::internal_like();
        profile.track_miss_base = 0.0;
        let outcome = label_scene(&mut frames, &profile, &mut StdRng::seed_from_u64(5));
        assert!(outcome.missing_tracks.is_empty());
        assert!(frames.iter().all(|f| f.human_labels.is_empty()));
    }

    #[test]
    fn jitter_perturbs_but_preserves_validity() {
        let mut frames = mk_frames(20, 3, 200);
        let mut profile = VendorProfile::lyft_like();
        profile.track_miss_base = 0.0;
        profile.track_miss_difficulty_weight = 0.0;
        profile.frame_miss_rate = 0.0;
        label_scene(&mut frames, &profile, &mut StdRng::seed_from_u64(6));
        let mut any_moved = false;
        for frame in &frames {
            for l in &frame.human_labels {
                assert!(l.bbox.is_valid());
                let g = frame.gt.iter().find(|g| g.track == l.gt_track).unwrap();
                let d = l.bbox.bev_center_distance(&g.bbox);
                assert!(d < 2.0, "jitter too large: {d}");
                if d > 1e-6 {
                    any_moved = true;
                }
            }
        }
        assert!(any_moved);
    }

    #[test]
    fn class_flips_use_confusable_classes() {
        let mut frames = mk_frames(10, 20, 200);
        let mut profile = VendorProfile::lyft_like();
        profile.track_miss_base = 0.0;
        profile.track_miss_difficulty_weight = 0.0;
        profile.class_flip_rate = 0.5;
        let outcome = label_scene(&mut frames, &profile, &mut StdRng::seed_from_u64(8));
        assert!(!outcome.class_flips.is_empty());
        for flip in &outcome.class_flips {
            assert_eq!(flip.true_class, ObjectClass::Car);
            assert!(ObjectClass::Car.confusable_with().contains(&flip.labeled_class));
        }
    }
}
