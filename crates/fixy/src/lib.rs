//! # fixy — the umbrella crate
//!
//! One-stop entry point for the Fixy / Learned Observation Assertions
//! reproduction. Re-exports the full public API of the workspace:
//!
//! * [`core`] — the LOA DSL and engine (scenes, features, AOFs, learner,
//!   factor-graph scoring, applications),
//! * [`data`] — the synthetic AV perception dataset substrate,
//! * [`geom`], [`stats`], [`graph`], [`assoc`] — the substrates,
//! * [`baselines`] — ad-hoc model assertions and uncertainty sampling,
//! * [`eval`] — the experiment harness reproducing Section 8,
//! * [`ingest`] — streaming ingest (incremental frame-by-frame assembly,
//!   the `.fscb` binary scene format, streamed corpus sources),
//! * [`serve`] — the resident multi-session audit service (sessions,
//!   reorder buffers, the wire protocol, the TCP server and client),
//! * [`obs`] — zero-overhead metrics, span tracing, and Prometheus
//!   exposition for the streaming and serving layers,
//! * [`render`] — BEV ASCII/SVG figures.
//!
//! ## Quickstart
//!
//! ```
//! use fixy::prelude::*;
//! use fixy::data::{generate_scene, DatasetProfile};
//!
//! // Offline: learn feature distributions from existing labeled scenes.
//! let mut cfg = DatasetProfile::LyftLike.scene_config();
//! cfg.world.duration = 4.0;      // shrunk for the doctest
//! cfg.lidar.beam_count = 240;
//! let train: Vec<_> = (0..2)
//!     .map(|i| generate_scene(&cfg, &format!("train-{i}"), i))
//!     .collect();
//! let finder = MissingTrackFinder::default();
//! let library = Learner::new().fit(&finder.feature_set(), &train).unwrap();
//!
//! // Online: rank potential missing labels in a new scene.
//! let data = generate_scene(&cfg, "new-scene", 99);
//! let scene = Scene::assemble(&data, &AssemblyConfig::default());
//! let ranked = finder.rank(&scene, &library).unwrap();
//! for candidate in ranked.iter().take(3) {
//!     println!(
//!         "track {:?}: score {:.2}, class {}, {} observations",
//!         candidate.track, candidate.score, candidate.class, candidate.n_obs
//!     );
//! }
//! ```

pub use fixy_core as core;
pub use loa_assoc as assoc;
pub use loa_baselines as baselines;
pub use loa_data as data;
pub use loa_eval as eval;
pub use loa_geom as geom;
pub use loa_graph as graph;
pub use loa_ingest as ingest;
pub use loa_obs as obs;
pub use loa_render as render;
pub use loa_serve as serve;
pub use loa_stats as stats;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use fixy_core::prelude::*;
    pub use fixy_core::{Aof, Feature, FeatureKind, FeatureSet, FeatureValue, FixyError, Learner};
}
