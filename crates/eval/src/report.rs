//! Plain-text table formatting for the reproduction binaries.

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Render with column widths fitted to content.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(w - cell.chars().count()));
                line.push_str(" |");
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage ("69%").
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Format an optional fraction ("—" when absent).
pub fn pct_opt(x: Option<f64>) -> String {
    x.map(pct).unwrap_or_else(|| "—".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(vec!["Method", "P@10"]);
        t.row(vec!["Fixy", "69%"]);
        t.row(vec!["Ad-hoc MA (rand)", "32%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{s}");
        assert!(s.contains("Fixy"));
        assert!(s.contains("32%"));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.69), "69%");
        assert_eq!(pct(1.0), "100%");
        assert_eq!(pct_opt(None), "—");
        assert_eq!(pct_opt(Some(0.5)), "50%");
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }
}
