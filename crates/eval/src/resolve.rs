//! Resolving flagged candidates against the injected-error ground truth —
//! the role the paper's expert auditors played, exact here because the
//! generator recorded every injected error.

use fixy_core::{ObsIdx, Scene, TrackIdx};
use loa_data::{DetectionProvenance, ObservationSource, SceneData, TrackId};
use std::collections::BTreeMap;

/// What a flagged track candidate actually is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateTruth {
    /// A real object the vendor missed entirely — a Section 8.2 hit.
    MissingTrack,
    /// A real, already-labeled object (not an error).
    LabeledReal,
    /// Dominated by false-positive / misclassified / grossly mislocalized
    /// detections — a Section 8.4 hit.
    ModelError,
    /// No clear majority.
    Ambiguous,
}

/// Resolve which ground-truth actor (if any) a model observation detects.
pub fn obs_true_track(data: &SceneData, scene: &Scene, obs: ObsIdx) -> Option<TrackId> {
    let o = scene.obs(obs);
    if o.source != ObservationSource::Model {
        return None;
    }
    let det = &data.frames[o.frame.0 as usize].detections[o.source_index];
    match det.provenance {
        DetectionProvenance::TrueObject(t) => Some(t),
        _ => None,
    }
}

/// Whether a model observation is a Section 8.4 model error (false
/// positive, misclassification, or gross localization error).
pub fn obs_is_model_error(data: &SceneData, scene: &Scene, obs: ObsIdx) -> bool {
    let o = scene.obs(obs);
    if o.source != ObservationSource::Model {
        return false;
    }
    data.frames[o.frame.0 as usize].detections[o.source_index].is_model_error()
}

/// Detailed resolution of a track candidate.
#[derive(Debug, Clone)]
pub struct TrackResolution {
    /// Model observations in the track.
    pub n_model_obs: usize,
    /// Of those, how many are model errors.
    pub n_error_obs: usize,
    /// The most common true-object actor among the model observations.
    pub majority_actor: Option<(TrackId, usize)>,
}

/// Resolve a track candidate's composition.
pub fn resolve_track(data: &SceneData, scene: &Scene, track: TrackIdx) -> TrackResolution {
    let t = scene.track(track);
    let mut n_model_obs = 0usize;
    let mut n_error_obs = 0usize;
    let mut actor_counts: BTreeMap<TrackId, usize> = BTreeMap::new();
    for obs in scene.track_obs(t) {
        if scene.obs(obs).source != ObservationSource::Model {
            continue;
        }
        n_model_obs += 1;
        if obs_is_model_error(data, scene, obs) {
            n_error_obs += 1;
        }
        if let Some(actor) = obs_true_track(data, scene, obs) {
            *actor_counts.entry(actor).or_insert(0) += 1;
        }
    }
    let majority_actor = actor_counts
        .into_iter()
        .max_by_key(|&(id, c)| (c, std::cmp::Reverse(id)));
    TrackResolution { n_model_obs, n_error_obs, majority_actor }
}

/// Whether a track candidate is a hit for the missing-track experiment:
/// the majority of its model observations detect an actor the vendor
/// missed entirely.
pub fn is_missing_track_hit(data: &SceneData, scene: &Scene, track: TrackIdx) -> bool {
    let res = resolve_track(data, scene, track);
    match res.majority_actor {
        Some((actor, count)) if 2 * count > res.n_model_obs => {
            data.injected.missing_tracks.iter().any(|m| m.track == actor)
        }
        _ => false,
    }
}

/// Whether a track candidate is a hit for the model-error experiment: a
/// majority of its model observations are erroneous.
pub fn is_model_error_hit(data: &SceneData, scene: &Scene, track: TrackIdx) -> bool {
    let res = resolve_track(data, scene, track);
    res.n_model_obs > 0 && 2 * res.n_error_obs > res.n_model_obs
}

/// Coarse classification of a flagged track.
pub fn resolve_track_candidate(data: &SceneData, scene: &Scene, track: TrackIdx) -> CandidateTruth {
    if is_missing_track_hit(data, scene, track) {
        return CandidateTruth::MissingTrack;
    }
    if is_model_error_hit(data, scene, track) {
        return CandidateTruth::ModelError;
    }
    let res = resolve_track(data, scene, track);
    match res.majority_actor {
        Some((_, count)) if 2 * count > res.n_model_obs => CandidateTruth::LabeledReal,
        _ => CandidateTruth::Ambiguous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixy_core::AssemblyConfig;
    use loa_data::scenarios::{ghost_track, missing_truck};

    #[test]
    fn missing_truck_resolves_as_missing_track() {
        let scenario = missing_truck(3);
        let scene = Scene::assemble(&scenario.scene, &AssemblyConfig::default());
        // Find the model-only track that detects the focus truck.
        let mut found = false;
        for track in scene.tracks() {
            if is_missing_track_hit(&scenario.scene, &scene, track.idx) {
                found = true;
                assert_eq!(
                    resolve_track_candidate(&scenario.scene, &scene, track.idx),
                    CandidateTruth::MissingTrack
                );
            }
        }
        assert!(found, "no candidate resolves to the missing truck");
    }

    #[test]
    fn ghost_resolves_as_model_error() {
        let scenario = ghost_track(4);
        let scene = Scene::assemble(&scenario.scene, &AssemblyConfig::model_only());
        let mut found = false;
        for track in scene.tracks() {
            if is_model_error_hit(&scenario.scene, &scene, track.idx) {
                found = true;
                assert!(!is_missing_track_hit(&scenario.scene, &scene, track.idx));
            }
        }
        assert!(found, "ghost track did not resolve as model error");
    }

    #[test]
    fn labeled_objects_resolve_as_labeled_real() {
        let scenario = missing_truck(5);
        let scene = Scene::assemble(&scenario.scene, &AssemblyConfig::default());
        let mut labeled_real = 0;
        for track in scene.tracks() {
            if resolve_track_candidate(&scenario.scene, &scene, track.idx)
                == CandidateTruth::LabeledReal
            {
                labeled_real += 1;
            }
        }
        assert!(labeled_real > 0, "the background cast should resolve as labeled");
    }
}
