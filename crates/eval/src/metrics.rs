//! Ranking metrics.

/// Precision at `k`: fraction of the first `min(k, len)` ranked items that
/// are relevant. When fewer than `k` items were flagged, the paper's
/// protocol applies: *"in some cases, fewer than 10 potential errors were
/// flagged; we use the maximum number in these cases"*. Returns `None`
/// for an empty ranking.
pub fn precision_at_k(relevance: &[bool], k: usize) -> Option<f64> {
    if relevance.is_empty() || k == 0 {
        return None;
    }
    let n = relevance.len().min(k);
    let hits = relevance[..n].iter().filter(|&&r| r).count();
    Some(hits as f64 / n as f64)
}

/// Recall at `k`: fraction of all `total_relevant` items found within the
/// first `k` ranked items. Returns `None` when there is nothing to find.
pub fn recall_at_k(relevance: &[bool], k: usize, total_relevant: usize) -> Option<f64> {
    if total_relevant == 0 {
        return None;
    }
    let n = relevance.len().min(k);
    let hits = relevance[..n].iter().filter(|&&r| r).count();
    Some(hits as f64 / total_relevant as f64)
}

/// Average precision over the full ranking (area under the
/// precision-recall curve, interpolated at each hit).
pub fn average_precision(relevance: &[bool], total_relevant: usize) -> Option<f64> {
    if total_relevant == 0 {
        return None;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &rel) in relevance.iter().enumerate() {
        if rel {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    Some(sum / total_relevant as f64)
}

/// Mean of per-scene metric values, ignoring `None`s. Returns `None` when
/// every input is `None`.
pub fn mean_of(values: &[Option<f64>]) -> Option<f64> {
    let present: Vec<f64> = values.iter().flatten().copied().collect();
    if present.is_empty() {
        None
    } else {
        Some(present.iter().sum::<f64>() / present.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn precision_basic() {
        let rel = [true, false, true, true, false];
        assert_eq!(precision_at_k(&rel, 1), Some(1.0));
        assert_eq!(precision_at_k(&rel, 2), Some(0.5));
        assert_eq!(precision_at_k(&rel, 5), Some(0.6));
    }

    #[test]
    fn precision_short_ranking_uses_max_available() {
        // Paper: fewer than 10 flagged → use the maximum number.
        let rel = [true, true, false];
        assert_eq!(precision_at_k(&rel, 10), Some(2.0 / 3.0));
    }

    #[test]
    fn precision_edge_cases() {
        assert_eq!(precision_at_k(&[], 10), None);
        assert_eq!(precision_at_k(&[true], 0), None);
    }

    #[test]
    fn recall_basic() {
        let rel = [true, false, true, false];
        assert_eq!(recall_at_k(&rel, 1, 4), Some(0.25));
        assert_eq!(recall_at_k(&rel, 4, 4), Some(0.5));
        assert_eq!(recall_at_k(&rel, 10, 2), Some(1.0));
        assert_eq!(recall_at_k(&rel, 10, 0), None);
    }

    #[test]
    fn average_precision_known_values() {
        // Hits at ranks 1 and 3 of 2 relevant: AP = (1/1 + 2/3)/2 = 5/6.
        let rel = [true, false, true];
        let ap = average_precision(&rel, 2).unwrap();
        assert!((ap - 5.0 / 6.0).abs() < 1e-12);
        // Perfect ranking.
        assert_eq!(average_precision(&[true, true], 2), Some(1.0));
        // All misses.
        assert_eq!(average_precision(&[false, false], 2), Some(0.0));
        assert_eq!(average_precision(&[], 0), None);
    }

    #[test]
    fn mean_of_skips_none() {
        assert_eq!(mean_of(&[Some(1.0), None, Some(0.0)]), Some(0.5));
        assert_eq!(mean_of(&[None, None]), None);
        assert_eq!(mean_of(&[]), None);
    }

    proptest! {
        #[test]
        fn prop_precision_in_unit_interval(
            rel in proptest::collection::vec(any::<bool>(), 1..50),
            k in 1usize..60,
        ) {
            let p = precision_at_k(&rel, k).unwrap();
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_recall_monotone_in_k(
            rel in proptest::collection::vec(any::<bool>(), 1..50),
        ) {
            let total = rel.iter().filter(|&&r| r).count().max(1);
            let mut prev = 0.0;
            for k in 1..=rel.len() {
                let r = recall_at_k(&rel, k, total).unwrap();
                prop_assert!(r >= prev - 1e-12);
                prev = r;
            }
        }

        #[test]
        fn prop_ap_bounded(
            rel in proptest::collection::vec(any::<bool>(), 1..50),
        ) {
            let total = rel.iter().filter(|&&r| r).count();
            if total > 0 {
                let ap = average_precision(&rel, total).unwrap();
                prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
            }
        }
    }
}
