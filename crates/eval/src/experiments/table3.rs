//! Table 3: precision at top 10/5/1 for finding tracks missed by humans —
//! Fixy vs the ad-hoc consistency MA ordered randomly and by model
//! confidence, on the Lyft-like and Internal-like profiles.

use crate::experiments::{parallel_map, shrink_config};
use crate::metrics::{mean_of, precision_at_k};
use crate::resolve::is_missing_track_hit;
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_baselines::{consistency_assertion, order_by_confidence, order_randomly};
use loa_data::{generate_scene, DatasetProfile};
use serde::{Deserialize, Serialize};

/// Experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Config {
    /// Training scenes per profile (the organizational resource).
    pub n_train: usize,
    /// Evaluation scenes for the Lyft-like profile (paper: 46).
    pub n_eval_lyft: usize,
    /// Evaluation scenes for the Internal-like profile (paper: 13).
    pub n_eval_internal: usize,
    pub base_seed: u64,
    /// Shrink scenes for fast CI runs.
    pub fast: bool,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config {
            n_train: 8,
            n_eval_lyft: DatasetProfile::LyftLike.paper_scene_count(),
            n_eval_internal: DatasetProfile::InternalLike.paper_scene_count(),
            base_seed: 0xF1C5,
            fast: false,
        }
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    pub method: String,
    pub dataset: String,
    pub p10: Option<f64>,
    pub p5: Option<f64>,
    pub p1: Option<f64>,
    /// Scenes with discovered errors that contributed to the averages.
    pub scenes: usize,
}

/// The full table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    pub rows: Vec<Table3Row>,
}

impl Table3Result {
    pub fn row(&self, method: &str, dataset: &str) -> Option<&Table3Row> {
        self.rows.iter().find(|r| r.method == method && r.dataset == dataset)
    }
}

/// Per-scene precision vectors for the three methods.
struct ScenePrecision {
    fixy: Option<Vec<bool>>,
    ma_rand: Option<Vec<bool>>,
    ma_conf: Option<Vec<bool>>,
}

/// Run the full Table 3 experiment.
pub fn run_table3(cfg: &Table3Config) -> Table3Result {
    let mut rows = Vec::new();
    for (profile, n_eval, dataset_name) in [
        (DatasetProfile::LyftLike, cfg.n_eval_lyft, "Lyft"),
        (DatasetProfile::InternalLike, cfg.n_eval_internal, "Internal"),
    ] {
        let mut scene_cfg = profile.scene_config();
        if cfg.fast {
            shrink_config(&mut scene_cfg, 6.0, 300);
        }

        // Offline phase: learn feature distributions from the training
        // split (human labels are the organizational resource).
        let finder = MissingTrackFinder::default();
        let train: Vec<_> = (0..cfg.n_train)
            .map(|i| {
                generate_scene(
                    &scene_cfg,
                    &format!("{}-train-{i}", profile.name()),
                    cfg.base_seed + i as u64,
                )
            })
            .collect();
        let library = Learner::new()
            .fit(&finder.feature_set(), &train)
            .expect("training scenes produce feature values");

        // Online phase: generate the evaluation scenes, then fan them
        // through the batch engine; the baselines run in the per-scene
        // post hook against the same assembled scene.
        let eval_seeds: Vec<u64> = (0..n_eval).map(|i| cfg.base_seed + 10_000 + i as u64).collect();
        let scenes = parallel_map(eval_seeds.clone(), |seed| {
            generate_scene(&scene_cfg, &format!("{}-eval-{seed}", profile.name()), seed)
        });
        let per_scene: Vec<ScenePrecision> = ScenePipeline::new(finder.clone())
            .process(&library, scenes, |r| {
                // Paper protocol: precision is measured across scenes
                // where errors were discovered.
                if r.data.injected.missing_tracks.is_empty() {
                    return ScenePrecision { fixy: None, ma_rand: None, ma_conf: None };
                }
                let (data, scene) = (&r.data, &r.scene);
                let fixy: Vec<bool> = r
                    .candidates
                    .iter()
                    .map(|c| is_missing_track_hit(data, scene, c.track))
                    .collect();

                let flagged = consistency_assertion(scene, 3);
                // `process` keeps input order, so `r.index` recovers the
                // scene's generation seed exactly.
                let rand_order = order_randomly(&flagged, eval_seeds[r.index] ^ 0x5EED);
                let ma_rand: Vec<bool> = rand_order
                    .iter()
                    .map(|&t| is_missing_track_hit(data, scene, t))
                    .collect();
                let conf_order = order_by_confidence(scene, &flagged);
                let ma_conf: Vec<bool> = conf_order
                    .iter()
                    .map(|&t| is_missing_track_hit(data, scene, t))
                    .collect();

                ScenePrecision {
                    fixy: Some(fixy),
                    ma_rand: Some(ma_rand),
                    ma_conf: Some(ma_conf),
                }
            })
            .expect("library fits features");

        let scenes_with_errors = per_scene.iter().filter(|s| s.fixy.is_some()).count();

        #[derive(Clone, Copy)]
        enum Method {
            Fixy,
            MaRand,
            MaConf,
        }
        let pick = |s: &ScenePrecision, m: Method| -> Option<Vec<bool>> {
            match m {
                Method::Fixy => s.fixy.clone(),
                Method::MaRand => s.ma_rand.clone(),
                Method::MaConf => s.ma_conf.clone(),
            }
        };
        let collect = |m: Method, k: usize| {
            let vals: Vec<Option<f64>> = per_scene
                .iter()
                .map(|s| pick(s, m).and_then(|rel| precision_at_k(&rel, k)))
                .collect();
            mean_of(&vals)
        };

        for (name, method) in [
            ("Fixy", Method::Fixy),
            ("Ad-hoc MA (rand)", Method::MaRand),
            ("Ad-hoc MA (conf)", Method::MaConf),
        ] {
            rows.push(Table3Row {
                method: name.to_string(),
                dataset: dataset_name.to_string(),
                p10: collect(method, 10),
                p5: collect(method, 5),
                p1: collect(method, 1),
                scenes: scenes_with_errors,
            });
        }
    }
    Table3Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Table3Config {
        Table3Config {
            n_train: 3,
            n_eval_lyft: 6,
            n_eval_internal: 4,
            base_seed: 77,
            fast: true,
        }
    }

    #[test]
    fn table3_produces_all_rows() {
        let result = run_table3(&fast_config());
        assert_eq!(result.rows.len(), 6);
        for dataset in ["Lyft", "Internal"] {
            for method in ["Fixy", "Ad-hoc MA (rand)", "Ad-hoc MA (conf)"] {
                let row = result.row(method, dataset).expect("row exists");
                for p in [row.p10, row.p5, row.p1].into_iter().flatten() {
                    assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }

    #[test]
    fn fixy_beats_random_ordering_shape() {
        // The paper's headline shape: Fixy ≥ rand-ordered MA on P@10.
        // Run on a small but non-trivial sample.
        let result = run_table3(&Table3Config {
            n_train: 4,
            n_eval_lyft: 8,
            n_eval_internal: 0,
            base_seed: 1234,
            fast: true,
        });
        let fixy = result.row("Fixy", "Lyft").unwrap().p10;
        let rand = result.row("Ad-hoc MA (rand)", "Lyft").unwrap().p10;
        match (fixy, rand) {
            (Some(f), Some(r)) => {
                assert!(f >= r - 0.05, "Fixy P@10 {f:.2} should not trail rand-MA {r:.2}");
            }
            _ => panic!("both methods should produce precision values"),
        }
    }
}
