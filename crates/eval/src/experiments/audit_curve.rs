//! Audit-efficiency curve (our extension of Section 8.2's protocol).
//!
//! The organization in Section 2 has a fixed audit budget: auditors review
//! the top-k candidates per scene. This experiment sweeps k and reports
//! the fraction of all injected missing tracks recovered, for Fixy and
//! for the ad-hoc consistency MA under random and confidence ordering —
//! the practical "how much audit time does Fixy save" view of Table 3.

use crate::experiments::{parallel_map, shrink_config};
use crate::resolve::{is_missing_track_hit, resolve_track};
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_baselines::{consistency_assertion, order_by_confidence, order_randomly};
use loa_data::{generate_scene, DatasetProfile, TrackId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Recall values at each budget for one method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditCurve {
    pub method: String,
    /// `(k, recall)` pairs over all scenes' injected missing tracks.
    pub points: Vec<(usize, f64)>,
}

/// The full experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditCurveResult {
    pub budgets: Vec<usize>,
    pub curves: Vec<AuditCurve>,
    /// Total injected missing tracks across scenes.
    pub total_errors: usize,
}

/// Per-scene per-method: the set of distinct missing tracks recovered
/// within each budget.
struct SceneRecovery {
    /// For each method: for each budget index, recovered actor ids.
    per_method: Vec<Vec<BTreeSet<TrackId>>>,
    injected: usize,
}

/// Run the audit-curve experiment over Lyft-like scenes.
pub fn run_audit_curve(
    seed: u64,
    n_train: usize,
    n_scenes: usize,
    budgets: &[usize],
    fast: bool,
) -> AuditCurveResult {
    let mut scene_cfg = DatasetProfile::LyftLike.scene_config();
    if fast {
        shrink_config(&mut scene_cfg, 6.0, 300);
    }
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..n_train)
        .map(|i| generate_scene(&scene_cfg, &format!("ac-train-{i}"), seed + i as u64))
        .collect();
    let library = Learner::new()
        .fit(&finder.feature_set(), &train)
        .expect("training scenes produce feature values");

    let seeds: Vec<u64> = (0..n_scenes).map(|i| seed + 40_000 + i as u64).collect();
    let budgets_vec = budgets.to_vec();
    let recoveries: Vec<SceneRecovery> = parallel_map(seeds, |s| {
        let data = generate_scene(&scene_cfg, &format!("ac-eval-{s}"), s);
        let scene = Scene::assemble(&data, &AssemblyConfig::default());

        let fixy_order: Vec<fixy_core::TrackIdx> = finder
            .rank(&scene, &library)
            .expect("library fits")
            .into_iter()
            .map(|c| c.track)
            .collect();
        let flagged = consistency_assertion(&scene, 3);
        let rand_order = order_randomly(&flagged, s ^ 0xA0D1);
        let conf_order = order_by_confidence(&scene, &flagged);

        let recovered = |order: &[fixy_core::TrackIdx]| -> Vec<BTreeSet<TrackId>> {
            budgets_vec
                .iter()
                .map(|&k| {
                    let mut set = BTreeSet::new();
                    for &t in order.iter().take(k) {
                        if is_missing_track_hit(&data, &scene, t) {
                            if let Some((actor, _)) = resolve_track(&data, &scene, t).majority_actor
                            {
                                set.insert(actor);
                            }
                        }
                    }
                    set
                })
                .collect()
        };

        SceneRecovery {
            per_method: vec![
                recovered(&fixy_order),
                recovered(&rand_order),
                recovered(&conf_order),
            ],
            injected: data.injected.missing_tracks.len(),
        }
    });

    let total_errors: usize = recoveries.iter().map(|r| r.injected).sum();
    let methods = ["Fixy", "Ad-hoc MA (rand)", "Ad-hoc MA (conf)"];
    let curves = methods
        .iter()
        .enumerate()
        .map(|(m, name)| {
            let points = budgets
                .iter()
                .enumerate()
                .map(|(bi, &k)| {
                    let found: usize = recoveries.iter().map(|r| r.per_method[m][bi].len()).sum();
                    (
                        k,
                        if total_errors > 0 { found as f64 / total_errors as f64 } else { 0.0 },
                    )
                })
                .collect();
            AuditCurve { method: name.to_string(), points }
        })
        .collect();

    AuditCurveResult { budgets: budgets.to_vec(), curves, total_errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_and_fixy_dominates_random() {
        let result = run_audit_curve(61, 3, 5, &[1, 3, 5, 10], true);
        assert!(result.total_errors > 0);
        for curve in &result.curves {
            // Monotone non-decreasing in budget.
            for w in curve.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12, "{}: {:?}", curve.method, curve.points);
            }
            for &(_, r) in &curve.points {
                assert!((0.0..=1.0).contains(&r));
            }
        }
        // At the largest budget, Fixy recovers at least as much as random
        // ordering (the paper's efficiency claim).
        let at_max = |name: &str| {
            result
                .curves
                .iter()
                .find(|c| c.method == name)
                .unwrap()
                .points
                .last()
                .unwrap()
                .1
        };
        assert!(at_max("Fixy") >= at_max("Ad-hoc MA (rand)") - 0.05);
    }
}
