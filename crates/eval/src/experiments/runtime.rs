//! Section 8.1 runtime check: *"Fixy executes in under five seconds on a
//! single CPU core for processing a 15 second scene of data."*

use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_data::{generate_scene, DatasetProfile};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Result of the runtime experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeResult {
    /// Scene duration in (simulated) seconds.
    pub scene_seconds: f64,
    /// Frames processed.
    pub frames: usize,
    /// Observations scored.
    pub observations: usize,
    /// Wall-clock milliseconds for the online phase (assembly, compile,
    /// score, rank), single-threaded.
    pub online_ms: f64,
    /// Wall-clock milliseconds for the offline learning phase.
    pub offline_ms: f64,
}

impl RuntimeResult {
    /// The paper's bound.
    pub fn under_five_seconds(&self) -> bool {
        self.online_ms < 5_000.0
    }
}

/// Measure the end-to-end pipeline on a 15-second Internal-like scene.
pub fn run_runtime_experiment(seed: u64, n_train: usize) -> RuntimeResult {
    let scene_cfg = DatasetProfile::InternalLike.scene_config();
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..n_train)
        .map(|i| generate_scene(&scene_cfg, &format!("rt-train-{i}"), seed + i as u64))
        .collect();

    let offline_start = Instant::now();
    let library = Learner::new()
        .fit(&finder.feature_set(), &train)
        .expect("training scenes produce feature values");
    let offline_ms = offline_start.elapsed().as_secs_f64() * 1_000.0;

    let data = generate_scene(&scene_cfg, "rt-eval", seed + 10_000);
    let online_start = Instant::now();
    let scene = Scene::assemble(&data, &AssemblyConfig::default());
    let ranked = finder.rank(&scene, &library).expect("library fits");
    let online_ms = online_start.elapsed().as_secs_f64() * 1_000.0;
    // Keep the ranking alive so the work is not optimized away.
    assert!(ranked.len() <= scene.n_tracks());

    RuntimeResult {
        scene_seconds: data.duration(),
        frames: data.frame_count(),
        observations: scene.n_observations(),
        online_ms,
        offline_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_is_within_paper_bound() {
        // Even in debug builds the online phase should beat the paper's
        // 5-second budget comfortably.
        let result = run_runtime_experiment(7, 1);
        assert!((result.scene_seconds - 15.0).abs() < 1e-9);
        assert!(result.frames == 150);
        assert!(result.observations > 0);
        assert!(
            result.under_five_seconds(),
            "online phase took {:.0} ms",
            result.online_ms
        );
    }
}
