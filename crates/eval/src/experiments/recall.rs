//! Section 8.2 recall experiments.
//!
//! 1. **Exhaustive audit**: one Internal-like scene with an unusually
//!    sloppy vendor (the paper's audited scene contained 24 missing
//!    tracks); Fixy's top-10 per class is checked against every injected
//!    missing track — the paper reports 75% (18/24).
//! 2. **Scene-level**: across Lyft-like scenes with at least one injected
//!    error, the fraction whose top-10 contains at least one true error —
//!    the paper reports 100% of the 32/46 scenes with errors.

use crate::experiments::{parallel_map, shrink_config};
use crate::resolve::{is_missing_track_hit, resolve_track};
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_data::{generate_scene, DatasetProfile, TrackId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Result of the exhaustive-audit recall experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecallResult {
    /// Injected missing tracks in the audited scene.
    pub total_missing: usize,
    /// How many were found in the top-10 ranked errors per class.
    pub found: usize,
    pub recall: f64,
}

/// Run the exhaustive-audit recall experiment.
///
/// `fast` shrinks the scene for CI runs.
pub fn run_recall_experiment(seed: u64, n_train: usize, fast: bool) -> RecallResult {
    let mut scene_cfg = DatasetProfile::InternalLike.scene_config();
    if fast {
        shrink_config(&mut scene_cfg, 8.0, 400);
    }
    // The audited scene fails audit *because* the vendor was sloppy that
    // day: raise miss rates so the scene carries many missing tracks,
    // approximating the paper's 24-missing-track scene.
    let mut audited_cfg = scene_cfg.clone();
    audited_cfg.vendor.track_miss_base = 0.45;
    audited_cfg.vendor.track_miss_difficulty_weight = 0.45;

    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..n_train)
        .map(|i| generate_scene(&scene_cfg, &format!("recall-train-{i}"), seed + i as u64))
        .collect();
    let library = Learner::new()
        .fit(&finder.feature_set(), &train)
        .expect("training scenes produce feature values");

    let data = generate_scene(&audited_cfg, "recall-audited", seed + 999);
    let scene = Scene::assemble(&data, &AssemblyConfig::default());
    let ranked = finder.rank(&scene, &library).expect("library fits");

    // Top-10 ranked errors per class (the paper's protocol).
    let mut found: BTreeSet<TrackId> = BTreeSet::new();
    for class in loa_data::ObjectClass::ALL {
        for c in ranked.iter().filter(|c| c.class == class).take(10) {
            if is_missing_track_hit(&data, &scene, c.track) {
                if let Some((actor, _)) = resolve_track(&data, &scene, c.track).majority_actor {
                    found.insert(actor);
                }
            }
        }
    }
    let total_missing = data.injected.missing_tracks.len();
    let found_count = data
        .injected
        .missing_tracks
        .iter()
        .filter(|m| found.contains(&m.track))
        .count();
    RecallResult {
        total_missing,
        found: found_count,
        recall: if total_missing > 0 { found_count as f64 / total_missing as f64 } else { 0.0 },
    }
}

/// Result of the scene-level experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneLevelRecall {
    pub total_scenes: usize,
    /// Scenes containing at least one injected missing track.
    pub scenes_with_errors: usize,
    /// Of those, scenes where the top 10 ranked errors contain ≥1 hit.
    pub scenes_hit_in_top10: usize,
}

impl SceneLevelRecall {
    pub fn hit_fraction(&self) -> Option<f64> {
        if self.scenes_with_errors == 0 {
            None
        } else {
            Some(self.scenes_hit_in_top10 as f64 / self.scenes_with_errors as f64)
        }
    }
}

/// Run the scene-level recall experiment over `n_scenes` Lyft-like scenes.
pub fn run_scene_level_recall(
    seed: u64,
    n_train: usize,
    n_scenes: usize,
    fast: bool,
) -> SceneLevelRecall {
    let mut scene_cfg = DatasetProfile::LyftLike.scene_config();
    if fast {
        shrink_config(&mut scene_cfg, 6.0, 300);
    }
    let finder = MissingTrackFinder::default();
    let train: Vec<_> = (0..n_train)
        .map(|i| generate_scene(&scene_cfg, &format!("slr-train-{i}"), seed + i as u64))
        .collect();
    let library = Learner::new()
        .fit(&finder.feature_set(), &train)
        .expect("training scenes produce feature values");

    let seeds: Vec<u64> = (0..n_scenes).map(|i| seed + 5_000 + i as u64).collect();
    let scenes = parallel_map(seeds, |s| generate_scene(&scene_cfg, &format!("slr-eval-{s}"), s));
    let outcomes: Vec<Option<bool>> = ScenePipeline::new(finder.clone())
        .process(&library, scenes, |r| {
            if r.data.injected.missing_tracks.is_empty() {
                return None;
            }
            Some(
                r.candidates
                    .iter()
                    .take(10)
                    .any(|c| is_missing_track_hit(&r.data, &r.scene, c.track)),
            )
        })
        .expect("library fits");

    let scenes_with_errors = outcomes.iter().filter(|o| o.is_some()).count();
    let scenes_hit_in_top10 = outcomes.iter().filter(|o| **o == Some(true)).count();
    SceneLevelRecall {
        total_scenes: n_scenes,
        scenes_with_errors,
        scenes_hit_in_top10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audited_scene_recall_is_substantial() {
        // Seed chosen to be representative of the typical recall level
        // (most seeds land in 0.55–0.85 with the workspace's vendored
        // deterministic RNG; see the seed sweep in this PR).
        let result = run_recall_experiment(17, 3, true);
        assert!(
            result.total_missing >= 5,
            "audited scene should carry many missing tracks, got {}",
            result.total_missing
        );
        assert!(
            result.recall >= 0.4,
            "recall {:.2} ({} of {})",
            result.recall,
            result.found,
            result.total_missing
        );
        assert!(result.found <= result.total_missing);
    }

    #[test]
    fn scene_level_recall_hits_most_error_scenes() {
        let result = run_scene_level_recall(53, 3, 6, true);
        assert!(result.scenes_with_errors > 0, "no scenes with errors generated");
        let frac = result.hit_fraction().unwrap();
        assert!(
            frac >= 0.5,
            "top-10 should hit most error scenes, got {frac:.2} ({}/{})",
            result.scenes_hit_in_top10,
            result.scenes_with_errors
        );
    }
}
