//! Section 8.4: finding novel ML prediction errors.
//!
//! Protocol: no human proposals; deploy the three ad-hoc MAs (appear,
//! flicker, multibox) and *exclude* what they find; Fixy then ranks the
//! remaining tracks with inverted AOFs. Compared against uncertainty
//! sampling. The paper reports Fixy P@10 = 82% vs 42% over 5 Lyft scenes,
//! with Fixy surfacing errors at up to 95% model confidence.

use crate::experiments::{parallel_map, shrink_config};
use crate::metrics::{mean_of, precision_at_k};
use crate::resolve::is_model_error_hit;
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_baselines::{uncertainty_sample_tracks, MaExcludedModelErrors};
use loa_data::{generate_scene, DatasetProfile};
use serde::{Deserialize, Serialize};

/// Result of the model-error experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelErrorResult {
    pub scenes: usize,
    pub fixy_p10: Option<f64>,
    pub uncertainty_p10: Option<f64>,
    /// Highest mean track confidence among Fixy's true-positive candidates
    /// in any top-10 (the "errors at 95% confidence" observation).
    pub max_hit_confidence: Option<f64>,
}

/// Run the model-error experiment over `n_scenes` Lyft-like scenes.
pub fn run_model_error_experiment(
    seed: u64,
    n_train: usize,
    n_scenes: usize,
    fast: bool,
) -> ModelErrorResult {
    let mut scene_cfg = DatasetProfile::LyftLike.scene_config();
    if fast {
        shrink_config(&mut scene_cfg, 8.0, 300);
    }
    let finder = ModelErrorFinder::default();
    let train: Vec<_> = (0..n_train)
        .map(|i| generate_scene(&scene_cfg, &format!("me-train-{i}"), seed + i as u64))
        .collect();
    let library = Learner::new()
        .fit(&finder.feature_set(), &train)
        .expect("training scenes produce feature values");

    let seeds: Vec<u64> = (0..n_scenes).map(|i| seed + 3_000 + i as u64).collect();
    struct SceneOutcome {
        fixy: Vec<bool>,
        uncertainty: Vec<bool>,
        max_hit_conf: Option<f64>,
    }
    let scenes = parallel_map(seeds, |s| generate_scene(&scene_cfg, &format!("me-eval-{s}"), s));
    let ranker = MaExcludedModelErrors::default();
    let assertions = ranker.assertions;
    let outcomes: Vec<SceneOutcome> = ScenePipeline::new(ranker)
        .process(&library, scenes, |r| {
            let (data, scene) = (&r.data, &r.scene);
            let fixy: Vec<bool> = r
                .candidates
                .iter()
                .map(|c| is_model_error_hit(data, scene, c.track))
                .collect();
            let max_hit_conf = r
                .candidates
                .iter()
                .take(10)
                .filter(|c| is_model_error_hit(data, scene, c.track))
                .filter_map(|c| c.mean_confidence)
                .fold(None, |acc: Option<f64>, c| Some(acc.map_or(c, |a| a.max(c))));

            // Uncertainty sampling over the same candidate universe
            // (tracks not flagged by the MAs). The assertions run a
            // second time here — the ranker already excluded them
            // during ranking — which is the accepted cost of keeping
            // the pipeline's per-scene output to ranked candidates;
            // the scans are linear and cheap next to compile+score.
            let excluded = assertions.flag_all(scene);
            let unc_tracks = uncertainty_sample_tracks(scene, 0.5);
            let uncertainty: Vec<bool> = unc_tracks
                .iter()
                .filter(|&&t| !scene.track_obs(scene.track(t)).iter().any(|o| excluded.contains(o)))
                .map(|&t| is_model_error_hit(data, scene, t))
                .collect();

            SceneOutcome { fixy, uncertainty, max_hit_conf }
        })
        .expect("library fits");

    let fixy_p10 = mean_of(
        &outcomes
            .iter()
            .map(|o| precision_at_k(&o.fixy, 10))
            .collect::<Vec<_>>(),
    );
    let uncertainty_p10 = mean_of(
        &outcomes
            .iter()
            .map(|o| precision_at_k(&o.uncertainty, 10))
            .collect::<Vec<_>>(),
    );
    let max_hit_confidence = outcomes
        .iter()
        .filter_map(|o| o.max_hit_conf)
        .fold(None, |acc: Option<f64>, c| Some(acc.map_or(c, |a| a.max(c))));

    ModelErrorResult {
        scenes: outcomes.len(),
        fixy_p10,
        uncertainty_p10,
        max_hit_confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixy_beats_uncertainty_sampling_shape() {
        let result = run_model_error_experiment(91, 3, 4, true);
        let fixy = result.fixy_p10.expect("fixy produced rankings");
        let unc = result.uncertainty_p10.expect("uncertainty produced rankings");
        assert!(
            fixy > unc,
            "Fixy P@10 {fixy:.2} should beat uncertainty sampling {unc:.2}"
        );
    }

    #[test]
    fn fixy_surfaces_high_confidence_errors() {
        let result = run_model_error_experiment(131, 3, 4, true);
        if let Some(conf) = result.max_hit_confidence {
            assert!(conf > 0.5, "expected at least one confident error, max {conf:.2}");
        }
    }
}
