//! Section 8.3: finding missing observations within tracks.
//!
//! The paper found a single such example in its datasets and Fixy ranked
//! it at the top; the baseline randomly orders candidate bundles. We
//! instantiate the Figure 6 scenario (a trailing car whose first-frame
//! label is missing) across multiple seeds and report the rank statistics
//! of the true missing observation under Fixy versus random ordering.

use crate::experiments::parallel_map;
use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_data::scenarios::trailing_car_missing_label;
use loa_data::{generate_scene, DatasetProfile, DetectionProvenance, ObservationSource};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of the missing-observation case study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissingObsResult {
    /// Scenario instances evaluated.
    pub n_cases: usize,
    /// Cases where Fixy ranked the true missing observation first.
    pub fixy_rank1: usize,
    /// Mean (1-based) rank of the true missing observation under Fixy.
    pub fixy_mean_rank: f64,
    /// Mean rank under random candidate ordering.
    pub random_mean_rank: f64,
}

/// Run the case study over `n_cases` scenario seeds.
pub fn run_missing_obs_experiment(seed: u64, n_train: usize, n_cases: usize) -> MissingObsResult {
    let finder = MissingObsFinder::default();
    let mut scene_cfg = DatasetProfile::LyftLike.scene_config();
    scene_cfg.world.duration = 6.0;
    scene_cfg.lidar.beam_count = 400;
    let train: Vec<_> = (0..n_train)
        .map(|i| generate_scene(&scene_cfg, &format!("mo-train-{i}"), seed + i as u64))
        .collect();
    let library = Learner::new()
        .fit(&finder.feature_set(), &train)
        .expect("training scenes produce feature values");

    let case_seeds: Vec<u64> = (0..n_cases).map(|i| seed + 2_000 + i as u64).collect();
    let ranks: Vec<Option<(usize, usize)>> = parallel_map(case_seeds, |s| {
        let scenario = trailing_car_missing_label(s);
        let data = &scenario.scene;
        let missing = data.injected.missing_boxes.first()?;
        let scene = Scene::assemble(data, &AssemblyConfig::default());
        let ranked = finder.rank(&scene, &library).expect("library fits");
        if ranked.is_empty() {
            return None;
        }
        let is_hit = |c: &BundleCandidate| {
            let bundle = scene.bundle(c.bundle);
            bundle.frame == missing.frame
                && scene.bundle_obs(bundle.idx).iter().any(|&o| {
                    let obs = scene.obs(o);
                    obs.source == ObservationSource::Model
                        && matches!(
                            data.frames[obs.frame.0 as usize].detections[obs.source_index]
                                .provenance,
                            DetectionProvenance::TrueObject(t) if t == missing.track
                        )
                })
        };
        let fixy_rank = ranked.iter().position(is_hit)? + 1;
        // Random baseline: the true bundle lands anywhere uniformly.
        let mut order: Vec<usize> = (0..ranked.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(s ^ 0xABCD));
        let hit_idx = ranked.iter().position(is_hit).expect("checked above");
        let random_rank = order.iter().position(|&i| i == hit_idx).expect("permutation") + 1;
        Some((fixy_rank, random_rank))
    });

    let found: Vec<(usize, usize)> = ranks.into_iter().flatten().collect();
    let n = found.len().max(1);
    MissingObsResult {
        n_cases: found.len(),
        fixy_rank1: found.iter().filter(|&&(f, _)| f == 1).count(),
        fixy_mean_rank: found.iter().map(|&(f, _)| f as f64).sum::<f64>() / n as f64,
        random_mean_rank: found.iter().map(|&(_, r)| r as f64).sum::<f64>() / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixy_ranks_missing_obs_near_top() {
        let result = run_missing_obs_experiment(17, 2, 4);
        assert!(result.n_cases >= 2, "cases resolved: {}", result.n_cases);
        // Paper: the missing observation ranked at the top. Allow a small
        // band across seeds.
        assert!(
            result.fixy_mean_rank <= 3.0,
            "Fixy mean rank {:.1}",
            result.fixy_mean_rank
        );
        assert!(
            result.fixy_mean_rank <= result.random_mean_rank,
            "Fixy ({:.1}) should beat random ({:.1})",
            result.fixy_mean_rank,
            result.random_mean_rank
        );
    }
}
