//! Experiment runners, one per table/figure of Section 8.

pub mod audit_curve;
pub mod injection_recall;
pub mod missing_obs;
pub mod model_errors;
pub mod recall;
pub mod runtime;
pub mod table3;

use rayon::prelude::*;

/// Map a function over items in parallel (scenes are independent),
/// keeping input order.
pub(crate) fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    items.into_par_iter().map(f).collect()
}

/// Shrink a scene config for fast test runs.
pub(crate) fn shrink_config(cfg: &mut loa_data::SceneConfig, duration: f64, beams: usize) {
    cfg.world.duration = duration;
    cfg.lidar.beam_count = beams;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map(items, |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
