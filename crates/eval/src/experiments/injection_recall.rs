//! The injection-recall conformance experiment: the paper's recall
//! oracle (Section 8.2) generalized over the full fuzzed error taxonomy.
//!
//! A [`ScenarioFuzzer`] corpus carries a *known, typed* error set per
//! scene. For each [`ErrorKind`] the matching application ranks every
//! scene through the [`ScenePipeline`] batch engine, and every injected
//! error must appear in the top-`k` of its scene's worklist:
//!
//! | Error kind | Application | Worklist entry |
//! |---|---|---|
//! | missing-track | `MissingTrackFinder` | model-only track of the actor |
//! | missing-box | `MissingObsFinder` | model-only bundle at the dropped frame |
//! | class-swap | `LabelAuditFinder` | the implausibly-labeled human track |
//! | ghost-track | `ModelErrorFinder` | the erratic model-only track |
//! | inconsistent-bundle | `BundleAuditFinder` | the mixed bundle at the frame |
//!
//! The result is a conformance verdict, not a statistic: the fuzzer only
//! injects errors that are observable by construction, so anything below
//! 100% recall is a regression in the engine (or an eligibility bug in
//! an injector) — and the report pins the seed so the failure replays
//! exactly.

use fixy_core::prelude::*;
use fixy_core::Learner;
use loa_data::fuzz::{ErrorKind, ScenarioFuzzer};
use loa_data::{DetectionProvenance, FrameId, ObservationSource, SceneData, TrackId};
use serde::{Deserialize, Serialize};

/// Parameters of the conformance run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectionRecallConfig {
    /// Corpus seed — the same seed always produces the identical corpus
    /// and report.
    pub seed: u64,
    /// Fuzzed scenes in the corpus.
    pub n_scenes: usize,
    /// Every injected error must rank in the top-`k` of its scene.
    pub top_k: usize,
    /// Clean training scenes for the feature libraries.
    pub n_train: usize,
}

impl Default for InjectionRecallConfig {
    fn default() -> Self {
        InjectionRecallConfig { seed: 7, n_scenes: 200, top_k: 10, n_train: 6 }
    }
}

/// Wire format for a materialized fuzz corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorpusFormat {
    /// `.fscb` — the frame-streamed compact binary scene format (default).
    #[default]
    Fscb,
    /// Scene JSON, for corpora that need to stay human-inspectable.
    Json,
}

/// Optional corpus materialization: write every generated scene into
/// `dir` and rank from the files instead of regenerating in memory — so
/// the conformance verdict also covers the on-disk scene codec.
#[derive(Debug, Clone)]
pub struct CorpusMaterialization {
    pub dir: std::path::PathBuf,
    pub format: CorpusFormat,
}

/// One injected error's verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorOutcome {
    /// [`ErrorKind::name`].
    pub kind: String,
    pub scene_id: String,
    /// Human-readable target ("track 12", "track 3 @ frame 17").
    pub target: String,
    /// Rank in the scene's worklist (0-based), if found within top-k.
    pub rank: Option<usize>,
}

/// Per-kind aggregate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KindRecall {
    pub kind: String,
    pub injected: usize,
    pub found: usize,
}

impl KindRecall {
    pub fn recall(&self) -> Option<f64> {
        if self.injected == 0 {
            None
        } else {
            Some(self.found as f64 / self.injected as f64)
        }
    }
}

/// The conformance result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectionRecallResult {
    pub config: InjectionRecallConfig,
    pub per_kind: Vec<KindRecall>,
    /// Every injected error that missed the top-k, for reproduction.
    pub misses: Vec<ErrorOutcome>,
}

impl InjectionRecallResult {
    pub fn total_injected(&self) -> usize {
        self.per_kind.iter().map(|k| k.injected).sum()
    }

    pub fn total_found(&self) -> usize {
        self.per_kind.iter().map(|k| k.found).sum()
    }

    /// Overall recall over all injected errors.
    pub fn recall(&self) -> f64 {
        let total = self.total_injected();
        if total == 0 {
            1.0
        } else {
            self.total_found() as f64 / total as f64
        }
    }

    /// The conformance verdict: the corpus actually injected errors and
    /// every one of them ranked in top-k. An empty corpus (or a broken
    /// injector registry yielding zero injections) is a failure, not a
    /// vacuous pass — a gate that verified nothing must not stay green.
    pub fn is_perfect(&self) -> bool {
        self.total_injected() > 0 && self.misses.is_empty()
    }

    /// Deterministic plain-text report (same seed ⇒ identical string).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut table =
            crate::report::Table::new(vec!["error kind", "injected", "in top-k", "recall"]);
        for k in &self.per_kind {
            table.row(vec![
                k.kind.clone(),
                k.injected.to_string(),
                k.found.to_string(),
                crate::report::pct_opt(k.recall()),
            ]);
        }
        table.row(vec![
            "TOTAL".to_string(),
            self.total_injected().to_string(),
            self.total_found().to_string(),
            crate::report::pct(self.recall()),
        ]);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "injection-recall conformance: seed {}, {} scenes, top-{}",
            self.config.seed, self.config.n_scenes, self.config.top_k
        );
        out.push_str(&table.render());
        if self.total_injected() == 0 {
            let _ = writeln!(
                out,
                "FAIL: corpus injected no errors — nothing was verified (increase --scenes)"
            );
        } else if self.is_perfect() {
            let _ = writeln!(
                out,
                "PASS: all injected errors ranked in the top-{}",
                self.config.top_k
            );
        } else {
            let _ = writeln!(
                out,
                "FAIL: {} injected error(s) missing from the top-{} (reproduce with --seed {}):",
                self.misses.len(),
                self.config.top_k,
                self.config.seed
            );
            for m in &self.misses {
                let _ = writeln!(out, "  {} in {}: {}", m.kind, m.scene_id, m.target);
            }
        }
        out
    }
}

/// Which actor a model-only track detects, by majority provenance.
fn majority_actor(data: &SceneData, scene: &Scene, track: TrackIdx) -> Option<TrackId> {
    crate::resolve::resolve_track(data, scene, track)
        .majority_actor
        .map(|(actor, _)| actor)
}

/// Whether a candidate track is majority-composed of the given ghost's
/// detections.
fn is_ghost_track(
    data: &SceneData,
    scene: &Scene,
    track: TrackIdx,
    ghost: loa_data::GhostId,
) -> bool {
    let t = scene.track(track);
    let obs = scene.track_obs(t);
    let ghostly = obs
        .iter()
        .filter(|&&o| {
            let ob = scene.obs(o);
            ob.source == ObservationSource::Model
                && data.frames[ob.frame.0 as usize].detections[ob.source_index].provenance
                    == DetectionProvenance::PersistentGhost(ghost)
        })
        .count();
    2 * ghostly > obs.len()
}

/// Whether a bundle contains a model detection of the given actor.
fn bundle_has_detection_of(
    data: &SceneData,
    scene: &Scene,
    bundle: BundleIdx,
    track: TrackId,
    frame: FrameId,
) -> bool {
    let b = scene.bundle(bundle);
    b.frame == frame
        && scene.bundle_obs(bundle).iter().any(|&o| {
            let ob = scene.obs(o);
            ob.source == ObservationSource::Model
                && data.frames[ob.frame.0 as usize].detections[ob.source_index].provenance
                    == DetectionProvenance::TrueObject(track)
        })
}

/// Whether a bundle contains the human label of the given actor.
fn bundle_has_label_of(
    data: &SceneData,
    scene: &Scene,
    bundle: BundleIdx,
    track: TrackId,
    frame: FrameId,
) -> bool {
    let b = scene.bundle(bundle);
    b.frame == frame
        && scene.bundle_obs(bundle).iter().any(|&o| {
            let ob = scene.obs(o);
            ob.source == ObservationSource::Human
                && data.frames[ob.frame.0 as usize].human_labels[ob.source_index].gt_track == track
        })
}

/// Whether a track contains any human label of the given actor.
fn track_has_label_of(data: &SceneData, scene: &Scene, track: TrackIdx, target: TrackId) -> bool {
    let t = scene.track(track);
    scene.track_obs(t).iter().any(|&o| {
        let ob = scene.obs(o);
        ob.source == ObservationSource::Human
            && data.frames[ob.frame.0 as usize].human_labels[ob.source_index].gt_track == target
    })
}

/// Run the conformance experiment. Streams the fuzzed corpus through
/// one [`ScenePipeline`] per error kind — scenes are regenerated lazily
/// from the seed per kind and pulled by the workers, so the whole
/// corpus is never materialized (O(workers) scenes in memory, the same
/// bounded regime as `fixy rank --scene <DIR>`) — and checks every
/// injected error against the top-k of its scene's worklist.
pub fn run_injection_recall(config: &InjectionRecallConfig) -> InjectionRecallResult {
    run_injection_recall_with_corpus(config, None)
        .expect("in-memory conformance run cannot hit disk errors")
}

/// Round-trip a fitted library through the `.flcb` binary codec. Every
/// conformance run scores through libraries that crossed the binary
/// wire, so the recall gate also locks `.flcb` fidelity: any bit the
/// codec perturbs in a probability grid shows up as a ranking change
/// and fails the gate.
fn roundtrip_flcb(app: &str, library: FeatureLibrary) -> FeatureLibrary {
    let bytes = fixy_core::flcb::encode_library(app, &library);
    let (decoded_app, decoded) =
        fixy_core::flcb::decode_library(&bytes).expect("flcb round-trip of a fitted library");
    assert_eq!(decoded_app, app, "flcb app tag survived");
    decoded
}

/// [`run_injection_recall`] with optional corpus materialization: when
/// `corpus` is given, every fuzzed scene is first written into the
/// directory (`.fscb` by default) and the pipelines rank from the files
/// — the same bytes an operator would archive and audit later.
pub fn run_injection_recall_with_corpus(
    config: &InjectionRecallConfig,
    corpus_out: Option<&CorpusMaterialization>,
) -> Result<InjectionRecallResult, loa_ingest::IngestError> {
    let fuzzer = ScenarioFuzzer::new(config.seed);
    let train = fuzzer.training_corpus(config.n_train);
    let corpus = || 0..config.n_scenes as u64;

    // Materialize first (one generation pass), then rank from disk.
    let scene_paths: Option<Vec<std::path::PathBuf>> = match corpus_out {
        None => None,
        Some(m) => {
            std::fs::create_dir_all(&m.dir)?;
            let mut paths = Vec::with_capacity(config.n_scenes);
            for i in corpus() {
                let scene = fuzzer.scene(i);
                let path = match m.format {
                    CorpusFormat::Fscb => {
                        let p = m.dir.join(format!("{}.fscb", scene.id));
                        loa_ingest::write_scene(&scene, &p)?;
                        p
                    }
                    CorpusFormat::Json => {
                        let p = m.dir.join(format!("{}.json", scene.id));
                        loa_data::io::save_scene(&scene, &p)?;
                        p
                    }
                };
                paths.push(path);
            }
            Some(paths)
        }
    };
    let gen_scene = |i: u64| -> Result<SceneData, fixy_core::FixyError> {
        match &scene_paths {
            Some(paths) => loa_ingest::load_scene_auto(&paths[i as usize]).map_err(Into::into),
            None => Ok(fuzzer.scene(i)),
        }
    };
    let k = config.top_k;

    let mt = MissingTrackFinder::default();
    let mo = MissingObsFinder::default();
    let me = ModelErrorFinder::default();
    let la = LabelAuditFinder::default();
    let ba = BundleAuditFinder;

    // The five libraries share two assemblies of the training corpus
    // (human-only for the four standard learners, mixed for the
    // bundle-consistency one) instead of re-assembling per application.
    let human_learner = Learner::new();
    let human_train: Vec<Scene> = train
        .iter()
        .map(|s| Scene::assemble(s, &human_learner.assembly))
        .collect();
    let mt_lib = roundtrip_flcb(
        "missing-tracks",
        human_learner
            .fit_assembled(&mt.feature_set(), &human_train)
            .expect("fit missing-track"),
    );
    let mo_lib = roundtrip_flcb(
        "missing-obs",
        human_learner
            .fit_assembled(&mo.feature_set(), &human_train)
            .expect("fit missing-obs"),
    );
    let me_lib = roundtrip_flcb(
        "model-errors",
        human_learner
            .fit_assembled(&me.feature_set(), &human_train)
            .expect("fit model-error"),
    );
    let la_lib = roundtrip_flcb(
        "label-audit",
        human_learner
            .fit_assembled(&la.feature_set(), &human_train)
            .expect("fit label-audit"),
    );
    // Bundle consistency is learned from matched human+model bundles.
    let mixed_train: Vec<Scene> = train
        .iter()
        .map(|s| Scene::assemble(s, &AssemblyConfig::default()))
        .collect();
    let ba_lib = roundtrip_flcb(
        "bundle-audit",
        Learner { assembly: AssemblyConfig::default() }
            .fit_assembled(&ba.feature_set(), &mixed_train)
            .expect("fit bundle-audit"),
    );
    drop((human_train, mixed_train, train));

    // Pipeline failures are scene-source failures once the corpus lives
    // on disk (a deleted or truncated file mid-run); carry them as the
    // ingest error they started as.
    let pipe_err = |stage: &str| {
        let stage = stage.to_string();
        move |e: fixy_core::FixyError| {
            loa_ingest::IngestError::Corrupt(format!("{stage} pipeline: {e}"))
        }
    };

    let mut outcomes: Vec<ErrorOutcome> = Vec::new();

    // --- missing-track ----------------------------------------------------
    let per_scene = ScenePipeline::new(mt.clone())
        .process_stream(&mt_lib, corpus(), gen_scene, |r| {
            let mut out = Vec::new();
            for m in &r.data.injected.missing_tracks {
                let rank = r
                    .candidates
                    .iter()
                    .take(k)
                    .position(|c| majority_actor(&r.data, &r.scene, c.track) == Some(m.track));
                out.push(ErrorOutcome {
                    kind: ErrorKind::MissingTrack.name().to_string(),
                    scene_id: r.id.clone(),
                    target: format!("track {}", m.track.0),
                    rank,
                });
            }
            out
        })
        .map_err(pipe_err("missing-track"))?;
    outcomes.extend(per_scene.into_iter().flatten());

    // --- missing-box ------------------------------------------------------
    let per_scene = ScenePipeline::new(mo.clone())
        .process_stream(&mo_lib, corpus(), gen_scene, |r| {
            let mut out = Vec::new();
            for m in &r.data.injected.missing_boxes {
                let rank = r.candidates.iter().take(k).position(|c| {
                    bundle_has_detection_of(&r.data, &r.scene, c.bundle, m.track, m.frame)
                });
                out.push(ErrorOutcome {
                    kind: ErrorKind::MissingBox.name().to_string(),
                    scene_id: r.id.clone(),
                    target: format!("track {} @ frame {}", m.track.0, m.frame.0),
                    rank,
                });
            }
            out
        })
        .map_err(pipe_err("missing-box"))?;
    outcomes.extend(per_scene.into_iter().flatten());

    // --- class-swap -------------------------------------------------------
    let per_scene = ScenePipeline::new(la.clone())
        .process_stream(&la_lib, corpus(), gen_scene, |r| {
            let mut out = Vec::new();
            for s in &r.data.injected.class_swaps {
                let rank = r
                    .candidates
                    .iter()
                    .take(k)
                    .position(|c| track_has_label_of(&r.data, &r.scene, c.track, s.track));
                out.push(ErrorOutcome {
                    kind: ErrorKind::ClassSwap.name().to_string(),
                    scene_id: r.id.clone(),
                    target: format!(
                        "track {} ({} as {})",
                        s.track.0, s.true_class, s.labeled_class
                    ),
                    rank,
                });
            }
            out
        })
        .map_err(pipe_err("class-swap"))?;
    outcomes.extend(per_scene.into_iter().flatten());

    // --- ghost-track ------------------------------------------------------
    let per_scene = ScenePipeline::new(me.clone())
        .process_stream(&me_lib, corpus(), gen_scene, |r| {
            let mut out = Vec::new();
            for (ghost, span) in &r.data.injected.ghost_tracks {
                let rank = r
                    .candidates
                    .iter()
                    .take(k)
                    .position(|c| is_ghost_track(&r.data, &r.scene, c.track, *ghost));
                out.push(ErrorOutcome {
                    kind: ErrorKind::GhostTrack.name().to_string(),
                    scene_id: r.id.clone(),
                    target: format!("ghost {} ({} frames)", ghost.0, span.len()),
                    rank,
                });
            }
            out
        })
        .map_err(pipe_err("ghost-track"))?;
    outcomes.extend(per_scene.into_iter().flatten());

    // --- inconsistent-bundle ----------------------------------------------
    let per_scene = ScenePipeline::new(ba.clone())
        .process_stream(&ba_lib, corpus(), gen_scene, |r| {
            let mut out = Vec::new();
            for ib in &r.data.injected.inconsistent_bundles {
                let rank = r.candidates.iter().take(k).position(|c| {
                    bundle_has_label_of(&r.data, &r.scene, c.bundle, ib.track, ib.frame)
                });
                out.push(ErrorOutcome {
                    kind: ErrorKind::InconsistentBundle.name().to_string(),
                    scene_id: r.id.clone(),
                    target: format!("track {} @ frame {}", ib.track.0, ib.frame.0),
                    rank,
                });
            }
            out
        })
        .map_err(pipe_err("inconsistent-bundle"))?;
    outcomes.extend(per_scene.into_iter().flatten());

    // --- aggregate (stable kind order) ------------------------------------
    let per_kind: Vec<KindRecall> = ErrorKind::ALL
        .iter()
        .map(|kind| {
            let name = kind.name();
            let of_kind: Vec<&ErrorOutcome> = outcomes.iter().filter(|o| o.kind == name).collect();
            KindRecall {
                kind: name.to_string(),
                injected: of_kind.len(),
                found: of_kind.iter().filter(|o| o.rank.is_some()).count(),
            }
        })
        .collect();
    let misses: Vec<ErrorOutcome> = outcomes.into_iter().filter(|o| o.rank.is_none()).collect();

    Ok(InjectionRecallResult { config: config.clone(), per_kind, misses })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_has_perfect_recall() {
        let config = InjectionRecallConfig { seed: 7, n_scenes: 8, top_k: 10, n_train: 3 };
        let result = run_injection_recall(&config);
        assert!(result.total_injected() > 0, "corpus injected nothing");
        assert!(
            result.is_perfect(),
            "missed {} of {}:\n{}",
            result.total_injected() - result.total_found(),
            result.total_injected(),
            result.report()
        );
        assert!((result.recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus_is_not_a_pass() {
        let config = InjectionRecallConfig { seed: 7, n_scenes: 0, top_k: 10, n_train: 2 };
        let result = run_injection_recall(&config);
        assert_eq!(result.total_injected(), 0);
        assert!(!result.is_perfect(), "a gate that verified nothing must not pass");
        assert!(
            result.report().contains("nothing was verified"),
            "{}",
            result.report()
        );
    }

    #[test]
    fn materialized_corpus_matches_in_memory() {
        // Ranking from a materialized corpus (either wire format) must
        // reproduce the in-memory report bit-for-bit: the scene codecs
        // are lossless where scoring is concerned.
        let base = std::env::temp_dir().join("fixy_eval_fuzz_corpus");
        let _ = std::fs::remove_dir_all(&base);
        let config = InjectionRecallConfig { seed: 7, n_scenes: 4, top_k: 10, n_train: 2 };
        let mem = run_injection_recall(&config).report();

        let fscb_dir = base.join("fscb");
        let m = CorpusMaterialization { dir: fscb_dir.clone(), format: CorpusFormat::Fscb };
        let fscb = run_injection_recall_with_corpus(&config, Some(&m)).unwrap().report();
        assert_eq!(mem, fscb, "fscb corpus changed the verdict");
        let written = std::fs::read_dir(&fscb_dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|x| x == "fscb"))
            .count();
        assert_eq!(written, 4, "one .fscb per fuzzed scene");

        // The JSON escape hatch reaches the same verdict from .json files.
        let json_dir = base.join("json");
        let m = CorpusMaterialization { dir: json_dir.clone(), format: CorpusFormat::Json };
        let json = run_injection_recall_with_corpus(&config, Some(&m)).unwrap().report();
        assert_eq!(mem, json, "json corpus changed the verdict");
        let written = std::fs::read_dir(&json_dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|x| x == "json"))
            .count();
        assert_eq!(written, 4, "one .json per fuzzed scene");

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn report_is_deterministic() {
        let config = InjectionRecallConfig { seed: 11, n_scenes: 3, top_k: 10, n_train: 2 };
        let a = run_injection_recall(&config).report();
        let b = run_injection_recall(&config).report();
        assert_eq!(a, b);
        assert!(a.contains("injection-recall conformance: seed 11"));
    }

    #[test]
    fn impossible_top_k_reports_misses() {
        // top_k = 0 can never contain anything: every injected error must
        // be reported as a miss, and the report must carry the seed.
        let config = InjectionRecallConfig { seed: 13, n_scenes: 3, top_k: 0, n_train: 2 };
        let result = run_injection_recall(&config);
        assert!(result.total_injected() > 0);
        assert_eq!(result.total_found(), 0);
        assert!(!result.is_perfect());
        let report = result.report();
        assert!(report.contains("FAIL"), "{report}");
        assert!(report.contains("--seed 13"), "{report}");
    }
}
