//! Evaluation harness for the Fixy reproduction.
//!
//! Regenerates every table and headline number of the paper's Section 8
//! against the synthetic datasets:
//!
//! * [`metrics`] — precision@k, recall, average precision,
//! * [`resolve`] — deciding whether a flagged candidate is a real injected
//!   error (the role the paper's expert auditors played),
//! * [`experiments`] — one runner per experiment: Table 3
//!   (missing-track precision), the Section 8.2 recall study, the Section
//!   8.3 missing-observation case study, the Section 8.4 model-error
//!   comparison, and the Section 8.1 runtime check,
//! * [`report`] — plain-text table formatting for the reproduction
//!   binaries and EXPERIMENTS.md.

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod resolve;

pub use experiments::{
    audit_curve::{run_audit_curve, AuditCurve, AuditCurveResult},
    injection_recall::{
        run_injection_recall, run_injection_recall_with_corpus, CorpusFormat,
        CorpusMaterialization, InjectionRecallConfig, InjectionRecallResult, KindRecall,
    },
    missing_obs::{run_missing_obs_experiment, MissingObsResult},
    model_errors::{run_model_error_experiment, ModelErrorResult},
    recall::{run_recall_experiment, run_scene_level_recall, RecallResult, SceneLevelRecall},
    runtime::{run_runtime_experiment, RuntimeResult},
    table3::{run_table3, Table3Config, Table3Result, Table3Row},
};
pub use metrics::{average_precision, precision_at_k, recall_at_k};
pub use resolve::{resolve_track_candidate, CandidateTruth};
