//! Disjoint-set union (path halving + union by size).

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n] }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Reinitialize to `n` singleton sets, reusing the allocations — the
    /// per-frame reset the bundling scratch relies on.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n);
        self.size.clear();
        self.size.resize(n, 1);
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already merged.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group element indices by set, sorted within and across groups.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        by_root.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_sets_are_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.groups(), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already together
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        let groups = uf.groups();
        assert_eq!(groups.len(), 3);
        assert!(groups.contains(&vec![0, 1, 2]));
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(UnionFind::new(3).len(), 3);
    }

    proptest! {
        #[test]
        fn prop_groups_partition(
            n in 1usize..40,
            edges in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
        ) {
            let mut uf = UnionFind::new(n);
            for (a, b) in edges {
                if a < n && b < n {
                    uf.union(a, b);
                }
            }
            let groups = uf.groups();
            let total: usize = groups.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
            // Transitivity spot check: all members of a group are connected.
            for g in &groups {
                for &x in g {
                    prop_assert!(uf.connected(g[0], x));
                }
            }
        }
    }
}
