//! Same-frame bundling of observations from multiple sources.
//!
//! The paper's worked example (Section 3):
//!
//! ```python
//! class TrackBundler(Bundler):
//!     def is_associated(self, box1, box2):
//!         return compute_iou(box1, box2) > 0.5
//! ```
//!
//! [`bundle_frame`] generalizes this: observations from *different* sources
//! whose association predicate fires are merged (transitively, via
//! union-find) into observation bundles. Two observations from the same
//! source are never directly associated — a source reports each object at
//! most once — but can end up in one bundle through a shared partner
//! (e.g. a duplicated model box overlapping the same human label).
//!
//! Bundling is no longer all-pairs: predicates that can only fire on
//! overlapping footprints ([`Bundler::overlap_only`], true for the IOU
//! default) prune candidate pairs through a [`BevGrid`] spatial index
//! before the predicate runs. The pruned path fires the predicate on the
//! identical subsequence of pairs the brute-force sweep would have fired
//! it on, so the resulting union-find — and therefore every bundle — is
//! identical; [`bundle_frame_brute`] stays as the reference the
//! equivalence proptests check against.

use crate::union_find::UnionFind;
use loa_geom::{iou_bev, iou_bev_prepared, Aabb2, BevGrid, Box3, Vec2};

/// The paper's bundling IOU threshold (`compute_iou(box1, box2) > 0.5`).
///
/// The single definition: [`IouBundler::default`] and the engine's
/// `AssemblyConfig` both read it, so the two cannot drift.
pub const DEFAULT_BUNDLE_IOU: f64 = 0.5;

/// Below this many observations a frame is pruned by a flat
/// precomputed-AABB pair sweep; from here up the [`BevGrid`] index pays
/// for its build. (Crossover measured on the assembly bench: the sweep
/// costs a few ns per pair, the grid ~0.2 µs per item to build+query.)
const GRID_MIN_ITEMS: usize = 96;

/// Precomputed per-box footprint geometry (AABB, corners, area). The
/// indexed bundling paths build one per observation per frame, so the
/// predicate's per-pair cost is the clip alone — no repeated corner
/// trigonometry.
#[derive(Debug, Clone, Copy)]
pub struct PreparedBox {
    pub aabb: Aabb2,
    pub corners: [Vec2; 4],
    pub area: f64,
}

impl PreparedBox {
    pub fn new(b: &Box3) -> Self {
        PreparedBox {
            aabb: b.bev_aabb(),
            corners: b.bev_corners(),
            area: b.bev_area(),
        }
    }
}

/// The association predicate between two boxes.
pub trait Bundler {
    /// Whether two boxes (from different sources) are the same object.
    fn is_associated(&self, a: &Box3, b: &Box3) -> bool;

    /// [`is_associated`](Self::is_associated) when the caller has already
    /// prepared both boxes' footprint geometry (the indexed bundling
    /// paths do, once per box per frame). Implementations that derive
    /// their own AABBs/corners (e.g. for an upper-bound reject or the
    /// clip itself) can use the prepared ones instead; the decision must
    /// be identical to `is_associated`.
    fn is_associated_prepared(
        &self,
        a: &Box3,
        b: &Box3,
        _pa: &PreparedBox,
        _pb: &PreparedBox,
    ) -> bool {
        self.is_associated(a, b)
    }

    /// True when the predicate can only fire for boxes whose BEV
    /// footprints overlap (and hence whose AABBs intersect) — e.g. any
    /// `iou > t` test with `t ≥ 0`. Enables spatial pruning; the default
    /// `false` keeps arbitrary predicates (center-distance closures, …)
    /// on the exhaustive pair sweep.
    fn overlap_only(&self) -> bool {
        false
    }
}

/// The default BEV-IOU bundler (`iou > threshold`).
#[derive(Debug, Clone, Copy)]
pub struct IouBundler {
    pub threshold: f64,
}

impl Default for IouBundler {
    fn default() -> Self {
        IouBundler { threshold: DEFAULT_BUNDLE_IOU }
    }
}

impl Bundler for IouBundler {
    fn is_associated(&self, a: &Box3, b: &Box3) -> bool {
        iou_bev(a, b) > self.threshold
    }

    fn is_associated_prepared(
        &self,
        a: &Box3,
        b: &Box3,
        pa: &PreparedBox,
        pb: &PreparedBox,
    ) -> bool {
        // Exact upper-bound reject before the polygon clip: the footprint
        // intersection is contained in the AABB intersection, so
        // `iou > t` requires `aabb_inter > t·(A + B)/(1 + t)`. Most
        // sub-threshold candidate pairs stop here, paying four min/max
        // instead of a Sutherland–Hodgman clip. (Decision-equivalent to
        // `is_associated`: the bound is exact, and on AABB-overlapping
        // pairs the prepared clip computes the identical IOU.)
        let _ = (a, b);
        if self.threshold > 0.0 {
            let (aabb_a, aabb_b) = (&pa.aabb, &pb.aabb);
            let ix = (aabb_a.max.x.min(aabb_b.max.x) - aabb_a.min.x.max(aabb_b.min.x)).max(0.0);
            let iy = (aabb_a.max.y.min(aabb_b.max.y) - aabb_a.min.y.max(aabb_b.min.y)).max(0.0);
            let upper = ix * iy;
            if upper * (1.0 + self.threshold) <= self.threshold * (pa.area + pb.area) {
                return false;
            }
        }
        iou_bev_prepared(&pa.corners, pa.area, &pb.corners, pb.area) > self.threshold
    }

    fn overlap_only(&self) -> bool {
        // iou > t with t ≥ 0 requires an actual footprint intersection;
        // a negative threshold would accept disjoint boxes.
        self.threshold >= 0.0
    }
}

impl<F: Fn(&Box3, &Box3) -> bool> Bundler for F {
    fn is_associated(&self, a: &Box3, b: &Box3) -> bool {
        self(a, b)
    }
}

/// One bundle: the member observations, as `(source, index_within_source)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleGroup {
    pub members: Vec<(usize, usize)>,
}

impl BundleGroup {
    /// Whether the bundle contains an observation from `source`.
    pub fn has_source(&self, source: usize) -> bool {
        self.members.iter().any(|&(s, _)| s == source)
    }

    /// Number of member observations.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// One frame's bundles in CSR form: group `g` is
/// `members[offsets[g]..offsets[g + 1]]`, each member a
/// `(source, index_within_source)` pair. The reusable-output twin of
/// `Vec<BundleGroup>` — [`bundle_frame_into`] refills one of these per
/// frame without allocating once warm.
#[derive(Debug, Clone, Default)]
pub struct FrameBundles {
    offsets: Vec<u32>,
    members: Vec<(usize, usize)>,
}

impl FrameBundles {
    /// Number of bundles.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Members of group `g`.
    pub fn group(&self, g: usize) -> &[(usize, usize)] {
        &self.members[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    /// Iterate groups in order.
    pub fn iter(&self) -> impl Iterator<Item = &[(usize, usize)]> + '_ {
        (0..self.len()).map(|g| self.group(g))
    }

    fn clear(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.members.clear();
    }
}

/// Reusable buffers for [`bundle_frame_into`]: the flattened observation
/// list, its AABBs, the spatial grid, the union-find, and the grouping
/// sort — everything the per-frame bundling pass would otherwise
/// reallocate.
#[derive(Debug, Clone, Default)]
pub struct BundleScratch {
    flat: Vec<(usize, usize)>,
    boxes: Vec<Box3>,
    prepared: Vec<PreparedBox>,
    aabbs: Vec<Aabb2>,
    grid: BevGrid,
    candidates: Vec<u32>,
    uf: UnionFind,
    by_root: Vec<(usize, usize)>,
}

/// Bundle one frame's observations.
///
/// `sources` is a list of per-source box lists (e.g. `[human_labels,
/// model_predictions]`). Returns bundles covering *every* observation;
/// unmatched observations become singleton bundles. Bundles are sorted by
/// their first member for determinism.
pub fn bundle_frame(sources: &[&[Box3]], bundler: &impl Bundler) -> Vec<BundleGroup> {
    let mut scratch = BundleScratch::default();
    let mut out = FrameBundles::default();
    bundle_frame_into(sources, bundler, &mut scratch, &mut out);
    out.iter().map(|g| BundleGroup { members: g.to_vec() }).collect()
}

/// [`bundle_frame`] with caller-owned scratch and CSR output (both reused
/// across frames). This is the path `AssemblyEngine` drives.
pub fn bundle_frame_into(
    sources: &[&[Box3]],
    bundler: &impl Bundler,
    scratch: &mut BundleScratch,
    out: &mut FrameBundles,
) {
    // Flatten with source tags.
    scratch.flat.clear();
    scratch.boxes.clear();
    for (s, boxes) in sources.iter().enumerate() {
        for (i, b) in boxes.iter().enumerate() {
            scratch.flat.push((s, i));
            scratch.boxes.push(*b);
        }
    }
    let n = scratch.flat.len();
    scratch.uf.reset(n);

    // Pairs are visited in ascending (a, b) order on all paths, and the
    // pruned paths only skip pairs the predicate could not fire on
    // (disjoint AABBs), so the union sequence — and the resulting roots —
    // are identical. Small frames prune through a precomputed-AABB pair
    // sweep (four comparisons per pair, no index setup); past
    // [`GRID_MIN_ITEMS`] the `BevGrid` takes over and the sweep's
    // `O(n²)` disappears.
    if n >= 2 && bundler.overlap_only() {
        scratch.prepared.clear();
        scratch.prepared.extend(scratch.boxes.iter().map(PreparedBox::new));
        if n < GRID_MIN_ITEMS {
            for a in 0..n {
                for b in (a + 1)..n {
                    if scratch.flat[a].0 == scratch.flat[b].0
                        || !scratch.prepared[a].aabb.intersects(&scratch.prepared[b].aabb)
                    {
                        continue;
                    }
                    if bundler.is_associated_prepared(
                        &scratch.boxes[a],
                        &scratch.boxes[b],
                        &scratch.prepared[a],
                        &scratch.prepared[b],
                    ) {
                        scratch.uf.union(a, b);
                    }
                }
            }
        } else {
            scratch.aabbs.clear();
            scratch.aabbs.extend(scratch.prepared.iter().map(|p| p.aabb));
            scratch.grid.build(&scratch.aabbs);
            for a in 0..n {
                let query = scratch.prepared[a].aabb;
                scratch.grid.query_into(&query, &mut scratch.candidates);
                for &cand in &scratch.candidates {
                    let b = cand as usize;
                    if b <= a || scratch.flat[a].0 == scratch.flat[b].0 {
                        continue;
                    }
                    if bundler.is_associated_prepared(
                        &scratch.boxes[a],
                        &scratch.boxes[b],
                        &scratch.prepared[a],
                        &scratch.prepared[b],
                    ) {
                        scratch.uf.union(a, b);
                    }
                }
            }
        }
    } else {
        for a in 0..n {
            for b in (a + 1)..n {
                if scratch.flat[a].0 == scratch.flat[b].0 {
                    continue;
                }
                if bundler.is_associated(&scratch.boxes[a], &scratch.boxes[b]) {
                    scratch.uf.union(a, b);
                }
            }
        }
    }

    // Group by root, roots ascending, members ascending within a group —
    // the same order `UnionFind::groups` produces, without its BTreeMap.
    scratch.by_root.clear();
    for x in 0..n {
        let r = scratch.uf.find(x);
        scratch.by_root.push((r, x));
    }
    scratch.by_root.sort_unstable();
    out.clear();
    let mut prev_root: Option<usize> = None;
    for &(root, x) in &scratch.by_root {
        if prev_root != Some(root) {
            if prev_root.is_some() {
                out.offsets.push(out.members.len() as u32);
            }
            prev_root = Some(root);
        }
        out.members.push(scratch.flat[x]);
    }
    if prev_root.is_some() {
        out.offsets.push(out.members.len() as u32);
    }
}

/// The retained all-pairs reference implementation — the oracle the
/// equivalence proptests hold [`bundle_frame`] to.
pub fn bundle_frame_brute(sources: &[&[Box3]], bundler: &impl Bundler) -> Vec<BundleGroup> {
    let mut flat: Vec<(usize, usize)> = Vec::new();
    for (s, boxes) in sources.iter().enumerate() {
        for i in 0..boxes.len() {
            flat.push((s, i));
        }
    }
    let n = flat.len();
    let mut uf = UnionFind::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let (sa, ia) = flat[a];
            let (sb, ib) = flat[b];
            if sa == sb {
                continue;
            }
            if bundler.is_associated(&sources[sa][ia], &sources[sb][ib]) {
                uf.union(a, b);
            }
        }
    }
    uf.groups()
        .into_iter()
        .map(|group| BundleGroup { members: group.into_iter().map(|x| flat[x]).collect() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn car(x: f64, y: f64) -> Box3 {
        Box3::on_ground(x, y, 0.0, 4.5, 1.9, 1.6, 0.0)
    }

    #[test]
    fn overlapping_cross_source_boxes_bundle() {
        let human = [car(10.0, 0.0)];
        let model = [car(10.2, 0.1)];
        let bundles = bundle_frame(&[&human, &model], &IouBundler::default());
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 2);
        assert!(bundles[0].has_source(0));
        assert!(bundles[0].has_source(1));
    }

    #[test]
    fn distant_boxes_stay_separate() {
        let human = [car(10.0, 0.0)];
        let model = [car(40.0, 5.0)];
        let bundles = bundle_frame(&[&human, &model], &IouBundler::default());
        assert_eq!(bundles.len(), 2);
        assert!(bundles.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn same_source_boxes_never_directly_bundle() {
        // Two overlapping boxes from the same source remain separate.
        let model = [car(10.0, 0.0), car(10.1, 0.0)];
        let bundles = bundle_frame(&[&model], &IouBundler::default());
        assert_eq!(bundles.len(), 2);
    }

    #[test]
    fn transitive_bundling_through_shared_partner() {
        // Two model duplicates both overlap one human label → one bundle of
        // three.
        let human = [car(10.0, 0.0)];
        let model = [car(10.15, 0.05), car(9.9, -0.05)];
        let bundles = bundle_frame(&[&human, &model], &IouBundler { threshold: 0.4 });
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 3);
    }

    #[test]
    fn all_observations_covered() {
        let human = [car(5.0, 0.0), car(20.0, 3.0)];
        let model = [car(5.1, 0.0), car(40.0, -4.0), car(20.1, 3.0)];
        let bundles = bundle_frame(&[&human, &model], &IouBundler::default());
        let total: usize = bundles.iter().map(BundleGroup::len).sum();
        assert_eq!(total, 5);
        // Two matched pairs and one singleton.
        assert_eq!(bundles.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = bundles.iter().map(BundleGroup::len).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn closure_bundler_works() {
        // The paper lets users override is_associated with arbitrary code;
        // here: center distance < 1 m. Closures keep the exhaustive sweep
        // (their predicate may fire on non-overlapping boxes).
        let custom = |a: &Box3, b: &Box3| a.bev_center_distance(b) < 1.0;
        assert!(!Bundler::overlap_only(&custom));
        let human = [car(10.0, 0.0)];
        let model = [car(10.8, 0.0)];
        let bundles = bundle_frame(&[&human, &model], &custom);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 2);
    }

    #[test]
    fn empty_sources() {
        let bundles = bundle_frame(&[], &IouBundler::default());
        assert!(bundles.is_empty());
        let empty: [Box3; 0] = [];
        let bundles = bundle_frame(&[&empty, &empty], &IouBundler::default());
        assert!(bundles.is_empty());
    }

    #[test]
    fn three_sources_bundle() {
        let human = [car(10.0, 0.0)];
        let model = [car(10.1, 0.0)];
        let auditor = [car(9.95, 0.02)];
        let bundles = bundle_frame(&[&human, &model, &auditor], &IouBundler::default());
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 3);
        for s in 0..3 {
            assert!(bundles[0].has_source(s));
        }
    }

    #[test]
    fn default_threshold_is_the_shared_constant() {
        assert_eq!(IouBundler::default().threshold, DEFAULT_BUNDLE_IOU);
        assert!(IouBundler::default().overlap_only());
        assert!(!IouBundler { threshold: -0.1 }.overlap_only());
    }

    #[test]
    fn scratch_reuse_across_frames_is_clean() {
        let mut scratch = BundleScratch::default();
        let mut out = FrameBundles::default();
        // A crowded frame, then an empty one, then a different one: no
        // state may leak between frames.
        let human = [car(5.0, 0.0), car(20.0, 3.0)];
        let model = [car(5.1, 0.0), car(40.0, -4.0), car(20.1, 3.0)];
        bundle_frame_into(&[&human, &model], &IouBundler::default(), &mut scratch, &mut out);
        assert_eq!(out.len(), 3);
        let empty: [Box3; 0] = [];
        bundle_frame_into(&[&empty, &empty], &IouBundler::default(), &mut scratch, &mut out);
        assert_eq!(out.len(), 0);
        let human2 = [car(1.0, 1.0)];
        bundle_frame_into(&[&human2, &empty], &IouBundler::default(), &mut scratch, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.group(0), &[(0, 0)]);
    }

    /// Deterministic pseudo-random box cloud, dense enough for plenty of
    /// overlap (including near-duplicates and degenerate stacks).
    fn cloud(seed: u64, n: usize, spread: f64) -> Vec<Box3> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 10_000) as f64 / 10_000.0
        };
        (0..n)
            .map(|_| {
                let x = (next() - 0.5) * spread;
                let y = (next() - 0.5) * spread;
                let l = 0.5 + next() * 6.0;
                let w = 0.5 + next() * 2.5;
                let yaw = next() * 6.3;
                Box3::on_ground(x, y, 0.0, l, w, 1.6, yaw)
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_indexed_equals_brute_force(
            seed in 0u64..5_000,
            n_human in 0usize..24,
            n_model in 0usize..24,
            spread in 4.0f64..80.0,
            threshold in 0.05f64..0.8,
        ) {
            // Tight spreads force heavy overlap (many unions, transitive
            // chains); wide spreads force sparsity. Either way the pruned
            // path must produce byte-identical bundles.
            let human = cloud(seed, n_human, spread);
            let model = cloud(seed ^ 0xABCD, n_model, spread);
            let bundler = IouBundler { threshold };
            let fast = bundle_frame(&[&human, &model], &bundler);
            let brute = bundle_frame_brute(&[&human, &model], &bundler);
            prop_assert_eq!(fast, brute);
        }

        #[test]
        fn prop_indexed_equals_brute_on_duplicate_stacks(
            seed in 0u64..5_000, n in 1usize..12,
        ) {
            // Degenerate case: many boxes stacked at the same spot across
            // three sources — maximal transitive merging.
            let a = cloud(seed, n, 0.5);
            let b = cloud(seed ^ 1, n, 0.5);
            let c = cloud(seed ^ 2, n, 0.5);
            let bundler = IouBundler::default();
            let fast = bundle_frame(&[&a, &b, &c], &bundler);
            let brute = bundle_frame_brute(&[&a, &b, &c], &bundler);
            prop_assert_eq!(fast, brute);
        }
    }
}
