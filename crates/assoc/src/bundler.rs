//! Same-frame bundling of observations from multiple sources.
//!
//! The paper's worked example (Section 3):
//!
//! ```python
//! class TrackBundler(Bundler):
//!     def is_associated(self, box1, box2):
//!         return compute_iou(box1, box2) > 0.5
//! ```
//!
//! [`bundle_frame`] generalizes this: observations from *different* sources
//! whose association predicate fires are merged (transitively, via
//! union-find) into observation bundles. Two observations from the same
//! source are never directly associated — a source reports each object at
//! most once — but can end up in one bundle through a shared partner
//! (e.g. a duplicated model box overlapping the same human label).

use crate::union_find::UnionFind;
use loa_geom::{iou_bev, Box3};

/// The association predicate between two boxes.
pub trait Bundler {
    /// Whether two boxes (from different sources) are the same object.
    fn is_associated(&self, a: &Box3, b: &Box3) -> bool;
}

/// The default BEV-IOU bundler (`iou > threshold`).
#[derive(Debug, Clone, Copy)]
pub struct IouBundler {
    pub threshold: f64,
}

impl Default for IouBundler {
    fn default() -> Self {
        // The paper's example threshold.
        IouBundler { threshold: 0.5 }
    }
}

impl Bundler for IouBundler {
    fn is_associated(&self, a: &Box3, b: &Box3) -> bool {
        iou_bev(a, b) > self.threshold
    }
}

impl<F: Fn(&Box3, &Box3) -> bool> Bundler for F {
    fn is_associated(&self, a: &Box3, b: &Box3) -> bool {
        self(a, b)
    }
}

/// One bundle: the member observations, as `(source, index_within_source)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleGroup {
    pub members: Vec<(usize, usize)>,
}

impl BundleGroup {
    /// Whether the bundle contains an observation from `source`.
    pub fn has_source(&self, source: usize) -> bool {
        self.members.iter().any(|&(s, _)| s == source)
    }

    /// Number of member observations.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Bundle one frame's observations.
///
/// `sources` is a list of per-source box lists (e.g. `[human_labels,
/// model_predictions]`). Returns bundles covering *every* observation;
/// unmatched observations become singleton bundles. Bundles are sorted by
/// their first member for determinism.
pub fn bundle_frame(sources: &[&[Box3]], bundler: &impl Bundler) -> Vec<BundleGroup> {
    // Flatten with source tags.
    let mut flat: Vec<(usize, usize)> = Vec::new();
    for (s, boxes) in sources.iter().enumerate() {
        for i in 0..boxes.len() {
            flat.push((s, i));
        }
    }
    let n = flat.len();
    let mut uf = UnionFind::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let (sa, ia) = flat[a];
            let (sb, ib) = flat[b];
            if sa == sb {
                continue;
            }
            if bundler.is_associated(&sources[sa][ia], &sources[sb][ib]) {
                uf.union(a, b);
            }
        }
    }
    uf.groups()
        .into_iter()
        .map(|group| BundleGroup { members: group.into_iter().map(|x| flat[x]).collect() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car(x: f64, y: f64) -> Box3 {
        Box3::on_ground(x, y, 0.0, 4.5, 1.9, 1.6, 0.0)
    }

    #[test]
    fn overlapping_cross_source_boxes_bundle() {
        let human = [car(10.0, 0.0)];
        let model = [car(10.2, 0.1)];
        let bundles = bundle_frame(&[&human, &model], &IouBundler::default());
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 2);
        assert!(bundles[0].has_source(0));
        assert!(bundles[0].has_source(1));
    }

    #[test]
    fn distant_boxes_stay_separate() {
        let human = [car(10.0, 0.0)];
        let model = [car(40.0, 5.0)];
        let bundles = bundle_frame(&[&human, &model], &IouBundler::default());
        assert_eq!(bundles.len(), 2);
        assert!(bundles.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn same_source_boxes_never_directly_bundle() {
        // Two overlapping boxes from the same source remain separate.
        let model = [car(10.0, 0.0), car(10.1, 0.0)];
        let bundles = bundle_frame(&[&model], &IouBundler::default());
        assert_eq!(bundles.len(), 2);
    }

    #[test]
    fn transitive_bundling_through_shared_partner() {
        // Two model duplicates both overlap one human label → one bundle of
        // three.
        let human = [car(10.0, 0.0)];
        let model = [car(10.15, 0.05), car(9.9, -0.05)];
        let bundles = bundle_frame(&[&human, &model], &IouBundler { threshold: 0.4 });
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 3);
    }

    #[test]
    fn all_observations_covered() {
        let human = [car(5.0, 0.0), car(20.0, 3.0)];
        let model = [car(5.1, 0.0), car(40.0, -4.0), car(20.1, 3.0)];
        let bundles = bundle_frame(&[&human, &model], &IouBundler::default());
        let total: usize = bundles.iter().map(BundleGroup::len).sum();
        assert_eq!(total, 5);
        // Two matched pairs and one singleton.
        assert_eq!(bundles.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = bundles.iter().map(BundleGroup::len).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn closure_bundler_works() {
        // The paper lets users override is_associated with arbitrary code;
        // here: center distance < 1 m.
        let custom = |a: &Box3, b: &Box3| a.bev_center_distance(b) < 1.0;
        let human = [car(10.0, 0.0)];
        let model = [car(10.8, 0.0)];
        let bundles = bundle_frame(&[&human, &model], &custom);
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 2);
    }

    #[test]
    fn empty_sources() {
        let bundles = bundle_frame(&[], &IouBundler::default());
        assert!(bundles.is_empty());
        let empty: [Box3; 0] = [];
        let bundles = bundle_frame(&[&empty, &empty], &IouBundler::default());
        assert!(bundles.is_empty());
    }

    #[test]
    fn three_sources_bundle() {
        let human = [car(10.0, 0.0)];
        let model = [car(10.1, 0.0)];
        let auditor = [car(9.95, 0.02)];
        let bundles = bundle_frame(&[&human, &model, &auditor], &IouBundler::default());
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 3);
        for s in 0..3 {
            assert!(bundles[0].has_source(s));
        }
    }
}
