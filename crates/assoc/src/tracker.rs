//! Cross-frame track building.
//!
//! Links per-frame items (bundles, in the LOA pipeline) into tracks by box
//! overlap between nearby frames — the paper's *"associated observations
//! within a track by box overlap across time"*. A configurable frame gap
//! lets tracks survive single-frame dropouts (real detectors flicker).
//!
//! The per-frame assignment is spatially pruned: active tracks only score
//! against items whose AABBs overlap their last box (a necessary
//! condition for any IOU above a positive threshold), collected through a
//! [`BevGrid`] built over the frame's items. Scores land in a sparse
//! [`ScoreMatrix`] — unscored pairs have IOU exactly 0, below any
//! positive threshold — so the matching is identical to the retained
//! dense reference, [`build_tracks_brute`], which the equivalence
//! proptests check against. All per-frame buffers live in a
//! [`TrackerScratch`] reused across frames and scenes.

use crate::bundler::PreparedBox;
use crate::matching::{greedy_match_into, hungarian_match_matrix, MatchScratch, ScoreMatrix};
use loa_geom::{iou_bev, iou_bev_prepared, BevGrid, Box3};
use serde::{Deserialize, Serialize};

/// Track-builder parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Minimum BEV IOU between an item and a track's last box. Lower than
    /// the bundling threshold because objects move between frames.
    pub iou_threshold: f64,
    /// Maximum number of frames between a track's last entry and a new
    /// one (1 = strictly adjacent frames).
    pub max_gap: u32,
    /// Use the exact Hungarian matcher instead of greedy (ablation).
    pub use_hungarian: bool,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig { iou_threshold: 0.05, max_gap: 2, use_hungarian: false }
    }
}

/// Below this many track×item pairs the per-frame assignment prunes by a
/// flat AABB sweep; from here up the [`BevGrid`] pays for its build.
const GRID_MIN_PAIRS: usize = 4096;

/// A built track: `(frame_index, item_index)` entries in frame order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackPath {
    pub entries: Vec<(usize, usize)>,
}

impl TrackPath {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First and last frame indices.
    pub fn frame_span(&self) -> Option<(usize, usize)> {
        Some((self.entries.first()?.0, self.entries.last()?.0))
    }
}

/// An active (extendable) track during the sweep.
#[derive(Debug, Clone, Copy)]
struct Active {
    track_idx: usize,
    last_frame: usize,
    last_box: Box3,
    /// Cached footprint geometry of `last_box` — each frame scores this
    /// track against several items, so corners/area are computed once per
    /// extension instead of once per pair.
    prepared: PreparedBox,
}

/// Reusable per-frame buffers for [`build_tracks_with`]: the active-track
/// list, the item grid, the sparse score matrix, and the matcher scratch.
/// One of these lives in each `AssemblyEngine`; a warm tracker allocates
/// only for the output paths themselves.
#[derive(Debug, Clone, Default)]
pub struct TrackerScratch {
    active: Vec<Active>,
    item_prepared: Vec<PreparedBox>,
    item_aabbs: Vec<loa_geom::Aabb2>,
    grid: BevGrid,
    candidates: Vec<u32>,
    matrix: ScoreMatrix,
    matcher: MatchScratch,
    matches: Vec<crate::matching::Match>,
    item_taken: Vec<bool>,
    /// Tracks created or extended by the most recent frame step (indices
    /// into the caller's track list, in match-then-creation order).
    touched: Vec<usize>,
}

/// Build tracks over per-frame item boxes.
///
/// Every item lands in exactly one track; items that never match anything
/// become singleton tracks. Tracks are returned sorted by first entry.
pub fn build_tracks(frames: &[Vec<Box3>], cfg: &TrackerConfig) -> Vec<TrackPath> {
    build_tracks_with(frames, cfg, &mut TrackerScratch::default())
}

/// [`build_tracks`] with caller-owned scratch, reused across calls.
pub fn build_tracks_with(
    frames: &[Vec<Box3>],
    cfg: &TrackerConfig,
    scratch: &mut TrackerScratch,
) -> Vec<TrackPath> {
    let mut tracks: Vec<TrackPath> = Vec::new();
    scratch.active.clear();
    for (f, items) in frames.iter().enumerate() {
        track_frame_step(cfg, scratch, &mut tracks, f, items);
    }
    tracks.sort_by_key(|t| t.entries.first().copied());
    tracks
}

/// Incremental cross-frame track builder: the per-frame sweep of
/// [`build_tracks_with`], exposed one frame at a time so live ingest can
/// extend tracks as data arrives instead of waiting for the whole scene.
///
/// Feed frames in order through [`step`](TrackBuilder::step);
/// [`finish`](TrackBuilder::finish) returns the same frame-ordered,
/// first-entry-sorted paths the batch entry point produces (the batch
/// function runs through this exact step), and
/// [`snapshot`](TrackBuilder::snapshot) clones the paths-so-far without
/// disturbing the in-progress state. All per-frame buffers live in an
/// owned [`TrackerScratch`], so a reused builder allocates only for the
/// output paths.
#[derive(Debug, Default)]
pub struct TrackBuilder {
    scratch: TrackerScratch,
    tracks: Vec<TrackPath>,
    next_frame: usize,
}

impl TrackBuilder {
    /// Start a new scene, discarding any in-progress state.
    pub fn begin(&mut self) {
        self.scratch.active.clear();
        self.tracks.clear();
        self.next_frame = 0;
    }

    /// Extend tracks with the next frame's item boxes.
    pub fn step(&mut self, cfg: &TrackerConfig, items: &[Box3]) {
        track_frame_step(cfg, &mut self.scratch, &mut self.tracks, self.next_frame, items);
        self.next_frame += 1;
    }

    /// Number of frames stepped since [`begin`](Self::begin).
    pub fn frames_stepped(&self) -> usize {
        self.next_frame
    }

    /// Take the finished paths, sorted by first entry. The builder needs
    /// a [`begin`](Self::begin) before the next scene.
    pub fn finish(&mut self) -> Vec<TrackPath> {
        self.scratch.active.clear();
        self.next_frame = 0;
        let mut tracks = std::mem::take(&mut self.tracks);
        tracks.sort_by_key(|t| t.entries.first().copied());
        tracks
    }

    /// The paths built so far, sorted by first entry — exactly what
    /// [`finish`](Self::finish) would return right now, without ending
    /// the scene.
    pub fn snapshot(&self) -> Vec<TrackPath> {
        let mut tracks = self.tracks.clone();
        tracks.sort_by_key(|t| t.entries.first().copied());
        tracks
    }

    /// The tracks created or extended by the most recent
    /// [`step`](Self::step), as indices into [`paths`](Self::paths)
    /// (match-then-creation order, may repeat nothing — indices are
    /// unique within a frame since each track gains at most one entry).
    pub fn last_touched(&self) -> &[usize] {
        &self.scratch.touched
    }

    /// The paths built so far, unsorted, in creation order. Because new
    /// tracks open at the frame sweep's tail, creation order is already
    /// non-decreasing in first entry — [`snapshot`](Self::snapshot)'s
    /// sort is a stable no-op over this list, so indices here agree with
    /// the sorted snapshot (locked by `last_touched_indexes_snapshot`).
    pub fn paths(&self) -> &[TrackPath] {
        &self.tracks
    }
}

/// One frame of the track sweep: expire stale actives, score
/// spatially-plausible track×item pairs into the sparse matrix, match,
/// extend matched tracks and open singletons for the rest.
fn track_frame_step(
    cfg: &TrackerConfig,
    scratch: &mut TrackerScratch,
    tracks: &mut Vec<TrackPath>,
    f: usize,
    items: &[Box3],
) {
    // Spatial pruning is exact only for positive thresholds: at ≤ 0 the
    // matcher admits zero-IOU (non-overlapping) pairs the grid would
    // hide, so fall back to scoring every pair.
    let prune = cfg.iou_threshold > 0.0;

    {
        // Expire tracks that are too old to extend.
        scratch.active.retain(|a| f - a.last_frame <= cfg.max_gap as usize);

        scratch.touched.clear();
        if items.is_empty() {
            return;
        }

        // Sparse score matrix: active tracks × current items, scoring
        // only spatially-plausible pairs. Small assignments prune by a
        // flat AABB sweep; large ones (fleet-scale frames) go through
        // the grid. Both push the identical AABB-intersecting entry set,
        // in the identical (track, item-ascending) order.
        scratch.matrix.reset(scratch.active.len(), items.len());
        if prune && scratch.active.len() * items.len() < GRID_MIN_PAIRS {
            scratch.item_prepared.clear();
            scratch.item_prepared.extend(items.iter().map(PreparedBox::new));
            for (a, active) in scratch.active.iter().enumerate() {
                let pa = &active.prepared;
                for (j, pj) in scratch.item_prepared.iter().enumerate() {
                    if pa.aabb.intersects(&pj.aabb) {
                        scratch.matrix.push(
                            a,
                            j,
                            iou_bev_prepared(&pa.corners, pa.area, &pj.corners, pj.area),
                        );
                    }
                }
            }
        } else if prune {
            scratch.item_prepared.clear();
            scratch.item_prepared.extend(items.iter().map(PreparedBox::new));
            scratch.item_aabbs.clear();
            scratch
                .item_aabbs
                .extend(scratch.item_prepared.iter().map(|p| p.aabb));
            scratch.grid.build(&scratch.item_aabbs);
            for (a, active) in scratch.active.iter().enumerate() {
                let pa = active.prepared;
                scratch.grid.query_into(&pa.aabb, &mut scratch.candidates);
                for &cand in &scratch.candidates {
                    let j = cand as usize;
                    let pj = &scratch.item_prepared[j];
                    scratch.matrix.push(
                        a,
                        j,
                        iou_bev_prepared(&pa.corners, pa.area, &pj.corners, pj.area),
                    );
                }
            }
        } else {
            for (a, active) in scratch.active.iter().enumerate() {
                for (j, item) in items.iter().enumerate() {
                    scratch.matrix.push(a, j, iou_bev(&active.last_box, item));
                }
            }
        }
        if cfg.use_hungarian {
            scratch.matches = hungarian_match_matrix(&scratch.matrix, cfg.iou_threshold);
        } else {
            greedy_match_into(
                &scratch.matrix,
                cfg.iou_threshold,
                &mut scratch.matcher,
                &mut scratch.matches,
            );
        }

        // On the pruned paths every item's geometry was already prepared
        // above; reuse it rather than recomputing per match.
        let item_prepared = |scratch: &TrackerScratch, i: usize| {
            if prune {
                scratch.item_prepared[i]
            } else {
                PreparedBox::new(&items[i])
            }
        };
        scratch.item_taken.clear();
        scratch.item_taken.resize(items.len(), false);
        for i in 0..scratch.matches.len() {
            let m = scratch.matches[i];
            let prepared = item_prepared(scratch, m.right);
            let a = &mut scratch.active[m.left];
            tracks[a.track_idx].entries.push((f, m.right));
            scratch.touched.push(a.track_idx);
            a.last_frame = f;
            a.last_box = items[m.right];
            a.prepared = prepared;
            scratch.item_taken[m.right] = true;
        }
        for i in 0..items.len() {
            if !scratch.item_taken[i] {
                let track_idx = tracks.len();
                scratch.touched.push(track_idx);
                let mut entries = Vec::with_capacity(8);
                entries.push((f, i));
                tracks.push(TrackPath { entries });
                let prepared = item_prepared(scratch, i);
                scratch.active.push(Active {
                    track_idx,
                    last_frame: f,
                    last_box: items[i],
                    prepared,
                });
            }
        }
    }
}

/// The retained dense all-pairs reference (the seed implementation) — the
/// oracle the equivalence proptests hold [`build_tracks`] to.
pub fn build_tracks_brute(frames: &[Vec<Box3>], cfg: &TrackerConfig) -> Vec<TrackPath> {
    use crate::matching::{greedy_match, hungarian_match};

    let mut tracks: Vec<TrackPath> = Vec::new();
    let mut active: Vec<Active> = Vec::new();

    for (f, items) in frames.iter().enumerate() {
        active.retain(|a| f - a.last_frame <= cfg.max_gap as usize);

        if items.is_empty() {
            continue;
        }

        // Dense score matrix: active tracks × current items.
        let scores: Vec<Vec<f64>> = active
            .iter()
            .map(|a| items.iter().map(|b| iou_bev(&a.last_box, b)).collect())
            .collect();
        let matches = if cfg.use_hungarian {
            hungarian_match(&scores, cfg.iou_threshold)
        } else {
            greedy_match(&scores, cfg.iou_threshold)
        };

        let mut item_taken = vec![false; items.len()];
        for m in &matches {
            let a = &mut active[m.left];
            tracks[a.track_idx].entries.push((f, m.right));
            a.last_frame = f;
            a.last_box = items[m.right];
            item_taken[m.right] = true;
        }
        for (i, taken) in item_taken.iter().enumerate() {
            if !taken {
                let track_idx = tracks.len();
                tracks.push(TrackPath { entries: vec![(f, i)] });
                active.push(Active {
                    track_idx,
                    last_frame: f,
                    last_box: items[i],
                    prepared: PreparedBox::new(&items[i]),
                });
            }
        }
    }

    tracks.sort_by_key(|t| t.entries.first().copied());
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn car(x: f64, y: f64) -> Box3 {
        Box3::on_ground(x, y, 0.0, 4.5, 1.9, 1.6, 0.0)
    }

    /// A car moving 1 m per frame for `n` frames.
    fn moving_car_frames(n: usize) -> Vec<Vec<Box3>> {
        (0..n).map(|i| vec![car(10.0 + i as f64, 0.0)]).collect()
    }

    #[test]
    fn single_moving_object_single_track() {
        let frames = moving_car_frames(10);
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].len(), 10);
        assert_eq!(tracks[0].frame_span(), Some((0, 9)));
    }

    #[test]
    fn two_distant_objects_two_tracks() {
        let frames: Vec<Vec<Box3>> = (0..8)
            .map(|i| vec![car(10.0 + i as f64, 0.0), car(10.0 + i as f64, 30.0)])
            .collect();
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        assert_eq!(tracks.len(), 2);
        assert!(tracks.iter().all(|t| t.len() == 8));
    }

    #[test]
    fn fast_object_breaks_track() {
        // 20 m jumps: IOU 0 between consecutive frames → singleton tracks.
        let frames: Vec<Vec<Box3>> =
            (0..5).map(|i| vec![car(10.0 + 20.0 * i as f64, 0.0)]).collect();
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        assert_eq!(tracks.len(), 5);
        assert!(tracks.iter().all(|t| t.len() == 1));
    }

    #[test]
    fn gap_bridges_single_frame_dropout() {
        // Object detected in frames 0,1,3,4 (missing in 2).
        let mut frames = moving_car_frames(5);
        frames[2] = vec![];
        let bridged = build_tracks(&frames, &TrackerConfig { max_gap: 2, ..Default::default() });
        assert_eq!(bridged.len(), 1);
        assert_eq!(bridged[0].len(), 4);

        let strict = build_tracks(&frames, &TrackerConfig { max_gap: 1, ..Default::default() });
        assert_eq!(strict.len(), 2);
    }

    #[test]
    fn every_item_in_exactly_one_track() {
        let frames: Vec<Vec<Box3>> = (0..6)
            .map(|i| vec![car(10.0 + i as f64, 0.0), car(30.0 - i as f64, 4.0), car(50.0, -4.0)])
            .collect();
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        let mut seen = std::collections::BTreeSet::new();
        for t in &tracks {
            for &(f, i) in &t.entries {
                assert!(seen.insert((f, i)), "item ({f},{i}) in two tracks");
            }
        }
        let total: usize = frames.iter().map(Vec::len).sum();
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn track_entries_are_frame_ordered() {
        let frames = moving_car_frames(12);
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        for t in &tracks {
            for w in t.entries.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn hungarian_and_greedy_agree_on_easy_scenes() {
        let frames: Vec<Vec<Box3>> = (0..8)
            .map(|i| vec![car(10.0 + i as f64, 0.0), car(20.0 - i as f64, 15.0)])
            .collect();
        let greedy =
            build_tracks(&frames, &TrackerConfig { use_hungarian: false, ..Default::default() });
        let hung =
            build_tracks(&frames, &TrackerConfig { use_hungarian: true, ..Default::default() });
        assert_eq!(greedy.len(), hung.len());
    }

    #[test]
    fn empty_input() {
        assert!(build_tracks(&[], &TrackerConfig::default()).is_empty());
        let empty_frames: Vec<Vec<Box3>> = vec![vec![], vec![], vec![]];
        assert!(build_tracks(&empty_frames, &TrackerConfig::default()).is_empty());
    }

    #[test]
    fn scratch_reuse_across_scenes_is_clean() {
        let mut scratch = TrackerScratch::default();
        let cfg = TrackerConfig::default();
        let a = moving_car_frames(6);
        let b: Vec<Vec<Box3>> = (0..4).map(|i| vec![car(50.0 + i as f64, 20.0)]).collect();
        let first = build_tracks_with(&a, &cfg, &mut scratch);
        let second = build_tracks_with(&b, &cfg, &mut scratch);
        assert_eq!(first, build_tracks(&a, &cfg), "first scene through warm scratch");
        assert_eq!(
            second,
            build_tracks(&b, &cfg),
            "second scene must not see stale state"
        );
    }

    #[test]
    fn incremental_builder_matches_batch() {
        let mut builder = TrackBuilder::default();
        let cfg = TrackerConfig::default();
        for seed in [1u64, 5, 9] {
            let frames = random_frames(seed, 8, 5, 30.0);
            builder.begin();
            for items in &frames {
                builder.step(&cfg, items);
            }
            assert_eq!(builder.frames_stepped(), frames.len());
            let streamed = builder.finish();
            assert_eq!(streamed, build_tracks(&frames, &cfg), "seed {seed}");
        }
    }

    #[test]
    fn builder_snapshot_is_prefix_batch() {
        // After k steps the snapshot must equal a batch build over the
        // first k frames: the sweep never revises past assignments.
        let frames = random_frames(3, 7, 4, 25.0);
        let cfg = TrackerConfig::default();
        let mut builder = TrackBuilder::default();
        builder.begin();
        for (k, items) in frames.iter().enumerate() {
            builder.step(&cfg, items);
            let prefix = build_tracks(&frames[..=k], &cfg);
            assert_eq!(builder.snapshot(), prefix, "prefix of {} frames", k + 1);
        }
        // Snapshot does not disturb the in-progress state.
        assert_eq!(builder.finish(), build_tracks(&frames, &cfg));
    }

    #[test]
    fn last_touched_indexes_snapshot() {
        // Per frame: the touched set is exactly the tracks whose paths
        // changed, creation order matches the sorted snapshot order, and
        // untouched paths are byte-identical to the previous frame's.
        let cfg = TrackerConfig::default();
        for seed in [2u64, 6, 11] {
            let frames = random_frames(seed, 9, 5, 28.0);
            let mut builder = TrackBuilder::default();
            builder.begin();
            let mut prev: Vec<TrackPath> = Vec::new();
            for items in &frames {
                builder.step(&cfg, items);
                let paths = builder.paths();
                assert_eq!(paths, builder.snapshot().as_slice(), "creation order is sorted order");
                let touched: std::collections::BTreeSet<usize> =
                    builder.last_touched().iter().copied().collect();
                assert_eq!(touched.len(), builder.last_touched().len(), "touched indices unique");
                for (i, path) in paths.iter().enumerate() {
                    let changed = prev.get(i) != Some(path);
                    assert_eq!(touched.contains(&i), changed, "seed {seed} track {i}");
                }
                prev = paths.to_vec();
            }
        }
    }

    #[test]
    fn last_touched_empty_frame_is_empty() {
        let mut builder = TrackBuilder::default();
        let cfg = TrackerConfig::default();
        builder.begin();
        builder.step(&cfg, &[car(10.0, 0.0)]);
        assert_eq!(builder.last_touched(), &[0]);
        builder.step(&cfg, &[]);
        assert!(builder.last_touched().is_empty());
    }

    #[test]
    fn zero_threshold_falls_back_to_dense_and_matches_brute() {
        // iou_threshold = 0 admits zero-score pairs; the pruned path would
        // diverge, so the tracker must take the dense path and agree with
        // the brute reference exactly.
        let frames: Vec<Vec<Box3>> = (0..5)
            .map(|i| vec![car(10.0 + 30.0 * i as f64, 0.0), car(-40.0, 25.0)])
            .collect();
        let cfg = TrackerConfig { iou_threshold: 0.0, ..Default::default() };
        assert_eq!(build_tracks(&frames, &cfg), build_tracks_brute(&frames, &cfg));
    }

    /// Deterministic pseudo-random per-frame box clouds with objects that
    /// drift, vanish, and reappear.
    fn random_frames(seed: u64, n_frames: usize, n_objects: usize, spread: f64) -> Vec<Vec<Box3>> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(3);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 10_000) as f64 / 10_000.0
        };
        let bases: Vec<(f64, f64, f64)> = (0..n_objects)
            .map(|_| ((next() - 0.5) * spread, (next() - 0.5) * spread, next() * 2.0))
            .collect();
        (0..n_frames)
            .map(|f| {
                bases
                    .iter()
                    .enumerate()
                    .filter(|(o, _)| {
                        // Deterministic dropouts.
                        (f * 7 + o * 13) % 11 != 0
                    })
                    .map(|(_, &(x, y, v))| car(x + v * f as f64, y))
                    .collect()
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_partition_invariant(
            n_frames in 1usize..8,
            n_objects in 0usize..4,
            speed in 0.0f64..3.0,
        ) {
            let frames: Vec<Vec<Box3>> = (0..n_frames)
                .map(|f| {
                    (0..n_objects)
                        .map(|o| car(10.0 + o as f64 * 25.0 + speed * f as f64, 0.0))
                        .collect()
                })
                .collect();
            let tracks = build_tracks(&frames, &TrackerConfig::default());
            let total: usize = frames.iter().map(Vec::len).sum();
            let covered: usize = tracks.iter().map(TrackPath::len).sum();
            prop_assert_eq!(total, covered);
            // Entries unique.
            let mut seen = std::collections::BTreeSet::new();
            for t in &tracks {
                for e in &t.entries {
                    prop_assert!(seen.insert(*e));
                }
            }
        }

        #[test]
        fn prop_slow_objects_form_long_tracks(speed in 0.0f64..1.5) {
            // A 4.5 m long car moving ≤1.5 m/frame keeps IOU above the
            // default threshold, so one track must emerge.
            let frames: Vec<Vec<Box3>> =
                (0..10).map(|f| vec![car(10.0 + speed * f as f64, 0.0)]).collect();
            let tracks = build_tracks(&frames, &TrackerConfig::default());
            prop_assert_eq!(tracks.len(), 1);
            prop_assert_eq!(tracks[0].len(), 10);
        }

        #[test]
        fn prop_indexed_equals_brute_force(
            seed in 0u64..5_000,
            n_frames in 0usize..10,
            n_objects in 0usize..10,
            spread in 3.0f64..60.0,
            threshold in 0.01f64..0.6,
            max_gap in 1u32..4,
            hungarian_sel in 0u8..2,
        ) {
            let hungarian = hungarian_sel == 1;
            // Dense clouds (heavy overlap, crossings, dropouts) and sparse
            // ones: the spatially-pruned tracker must match the retained
            // dense reference exactly, under both matchers.
            let frames = random_frames(seed, n_frames, n_objects, spread);
            let cfg = TrackerConfig {
                iou_threshold: threshold,
                max_gap,
                use_hungarian: hungarian,
            };
            let fast = build_tracks(&frames, &cfg);
            let brute = build_tracks_brute(&frames, &cfg);
            prop_assert_eq!(fast, brute);
        }
    }
}
