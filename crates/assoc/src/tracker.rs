//! Cross-frame track building.
//!
//! Links per-frame items (bundles, in the LOA pipeline) into tracks by box
//! overlap between nearby frames — the paper's *"associated observations
//! within a track by box overlap across time"*. A configurable frame gap
//! lets tracks survive single-frame dropouts (real detectors flicker).

use crate::matching::{greedy_match, hungarian_match};
use loa_geom::{iou_bev, Box3};
use serde::{Deserialize, Serialize};

/// Track-builder parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Minimum BEV IOU between an item and a track's last box. Lower than
    /// the bundling threshold because objects move between frames.
    pub iou_threshold: f64,
    /// Maximum number of frames between a track's last entry and a new
    /// one (1 = strictly adjacent frames).
    pub max_gap: u32,
    /// Use the exact Hungarian matcher instead of greedy (ablation).
    pub use_hungarian: bool,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig { iou_threshold: 0.05, max_gap: 2, use_hungarian: false }
    }
}

/// A built track: `(frame_index, item_index)` entries in frame order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackPath {
    pub entries: Vec<(usize, usize)>,
}

impl TrackPath {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First and last frame indices.
    pub fn frame_span(&self) -> Option<(usize, usize)> {
        Some((self.entries.first()?.0, self.entries.last()?.0))
    }
}

/// Build tracks over per-frame item boxes.
///
/// Every item lands in exactly one track; items that never match anything
/// become singleton tracks. Tracks are returned sorted by first entry.
pub fn build_tracks(frames: &[Vec<Box3>], cfg: &TrackerConfig) -> Vec<TrackPath> {
    struct Active {
        track_idx: usize,
        last_frame: usize,
        last_box: Box3,
    }

    let mut tracks: Vec<TrackPath> = Vec::new();
    let mut active: Vec<Active> = Vec::new();

    for (f, items) in frames.iter().enumerate() {
        // Expire tracks that are too old to extend.
        active.retain(|a| f - a.last_frame <= cfg.max_gap as usize);

        if items.is_empty() {
            continue;
        }

        // Score matrix: active tracks × current items.
        let scores: Vec<Vec<f64>> = active
            .iter()
            .map(|a| items.iter().map(|b| iou_bev(&a.last_box, b)).collect())
            .collect();
        let matches = if cfg.use_hungarian {
            hungarian_match(&scores, cfg.iou_threshold)
        } else {
            greedy_match(&scores, cfg.iou_threshold)
        };

        let mut item_taken = vec![false; items.len()];
        for m in &matches {
            let a = &mut active[m.left];
            tracks[a.track_idx].entries.push((f, m.right));
            a.last_frame = f;
            a.last_box = items[m.right];
            item_taken[m.right] = true;
        }
        for (i, taken) in item_taken.iter().enumerate() {
            if !taken {
                let track_idx = tracks.len();
                tracks.push(TrackPath { entries: vec![(f, i)] });
                active.push(Active { track_idx, last_frame: f, last_box: items[i] });
            }
        }
    }

    tracks.sort_by_key(|t| t.entries.first().copied());
    tracks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn car(x: f64, y: f64) -> Box3 {
        Box3::on_ground(x, y, 0.0, 4.5, 1.9, 1.6, 0.0)
    }

    /// A car moving 1 m per frame for `n` frames.
    fn moving_car_frames(n: usize) -> Vec<Vec<Box3>> {
        (0..n).map(|i| vec![car(10.0 + i as f64, 0.0)]).collect()
    }

    #[test]
    fn single_moving_object_single_track() {
        let frames = moving_car_frames(10);
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].len(), 10);
        assert_eq!(tracks[0].frame_span(), Some((0, 9)));
    }

    #[test]
    fn two_distant_objects_two_tracks() {
        let frames: Vec<Vec<Box3>> = (0..8)
            .map(|i| vec![car(10.0 + i as f64, 0.0), car(10.0 + i as f64, 30.0)])
            .collect();
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        assert_eq!(tracks.len(), 2);
        assert!(tracks.iter().all(|t| t.len() == 8));
    }

    #[test]
    fn fast_object_breaks_track() {
        // 20 m jumps: IOU 0 between consecutive frames → singleton tracks.
        let frames: Vec<Vec<Box3>> =
            (0..5).map(|i| vec![car(10.0 + 20.0 * i as f64, 0.0)]).collect();
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        assert_eq!(tracks.len(), 5);
        assert!(tracks.iter().all(|t| t.len() == 1));
    }

    #[test]
    fn gap_bridges_single_frame_dropout() {
        // Object detected in frames 0,1,3,4 (missing in 2).
        let mut frames = moving_car_frames(5);
        frames[2] = vec![];
        let bridged = build_tracks(&frames, &TrackerConfig { max_gap: 2, ..Default::default() });
        assert_eq!(bridged.len(), 1);
        assert_eq!(bridged[0].len(), 4);

        let strict = build_tracks(&frames, &TrackerConfig { max_gap: 1, ..Default::default() });
        assert_eq!(strict.len(), 2);
    }

    #[test]
    fn every_item_in_exactly_one_track() {
        let frames: Vec<Vec<Box3>> = (0..6)
            .map(|i| vec![car(10.0 + i as f64, 0.0), car(30.0 - i as f64, 4.0), car(50.0, -4.0)])
            .collect();
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        let mut seen = std::collections::BTreeSet::new();
        for t in &tracks {
            for &(f, i) in &t.entries {
                assert!(seen.insert((f, i)), "item ({f},{i}) in two tracks");
            }
        }
        let total: usize = frames.iter().map(Vec::len).sum();
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn track_entries_are_frame_ordered() {
        let frames = moving_car_frames(12);
        let tracks = build_tracks(&frames, &TrackerConfig::default());
        for t in &tracks {
            for w in t.entries.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn hungarian_and_greedy_agree_on_easy_scenes() {
        let frames: Vec<Vec<Box3>> = (0..8)
            .map(|i| vec![car(10.0 + i as f64, 0.0), car(20.0 - i as f64, 15.0)])
            .collect();
        let greedy =
            build_tracks(&frames, &TrackerConfig { use_hungarian: false, ..Default::default() });
        let hung =
            build_tracks(&frames, &TrackerConfig { use_hungarian: true, ..Default::default() });
        assert_eq!(greedy.len(), hung.len());
    }

    #[test]
    fn empty_input() {
        assert!(build_tracks(&[], &TrackerConfig::default()).is_empty());
        let empty_frames: Vec<Vec<Box3>> = vec![vec![], vec![], vec![]];
        assert!(build_tracks(&empty_frames, &TrackerConfig::default()).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_partition_invariant(
            n_frames in 1usize..8,
            n_objects in 0usize..4,
            speed in 0.0f64..3.0,
        ) {
            let frames: Vec<Vec<Box3>> = (0..n_frames)
                .map(|f| {
                    (0..n_objects)
                        .map(|o| car(10.0 + o as f64 * 25.0 + speed * f as f64, 0.0))
                        .collect()
                })
                .collect();
            let tracks = build_tracks(&frames, &TrackerConfig::default());
            let total: usize = frames.iter().map(Vec::len).sum();
            let covered: usize = tracks.iter().map(TrackPath::len).sum();
            prop_assert_eq!(total, covered);
            // Entries unique.
            let mut seen = std::collections::BTreeSet::new();
            for t in &tracks {
                for e in &t.entries {
                    prop_assert!(seen.insert(*e));
                }
            }
        }

        #[test]
        fn prop_slow_objects_form_long_tracks(speed in 0.0f64..1.5) {
            // A 4.5 m long car moving ≤1.5 m/frame keeps IOU above the
            // default threshold, so one track must emerge.
            let frames: Vec<Vec<Box3>> =
                (0..10).map(|f| vec![car(10.0 + speed * f as f64, 0.0)]).collect();
            let tracks = build_tracks(&frames, &TrackerConfig::default());
            prop_assert_eq!(tracks.len(), 1);
            prop_assert_eq!(tracks[0].len(), 10);
        }
    }
}
