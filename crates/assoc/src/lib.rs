//! Data-association substrate for the Fixy / LOA reproduction.
//!
//! Section 4 of the paper: *"our DSL supports means of associating
//! observations together: across observation sources (observation bundles
//! …) and across time (tracks …)"*. The association itself is a classic
//! perception problem; this crate provides the machinery:
//!
//! * [`matching`] — one-shot assignment between two box sets over a flat
//!   (possibly sparse) [`ScoreMatrix`]: greedy highest-overlap-first (the
//!   paper's default behavior) and an exact Hungarian solver for the
//!   ablation,
//! * [`union_find`] — disjoint sets for multi-source bundling,
//! * [`bundler`] — group same-frame observations from different sources
//!   into observation bundles by IOU (the `TrackBundler` of Section 3),
//!   pruning candidate pairs through a
//!   [`BevGrid`](loa_geom::BevGrid) spatial index,
//! * [`tracker`] — link bundles across adjacent frames into tracks by box
//!   overlap, with a configurable frame gap, scoring only
//!   spatially-plausible track×item pairs.
//!
//! Everything here is generic over "things that have a [`Box3`]"; the LOA
//! engine supplies its observation types. Both association passes retain
//! their all-pairs implementations (`bundle_frame_brute`,
//! `build_tracks_brute`) as the oracles equivalence proptests run
//! against, and both expose `_into` / `_with` variants whose scratch
//! buffers (`BundleScratch`, `TrackerScratch`) a long-lived engine reuses
//! across frames and scenes.

pub mod bundler;
pub mod matching;
pub mod tracker;
pub mod union_find;

pub use bundler::{
    bundle_frame, bundle_frame_brute, bundle_frame_into, BundleGroup, BundleScratch, Bundler,
    FrameBundles, IouBundler, DEFAULT_BUNDLE_IOU,
};
pub use matching::{
    greedy_match, greedy_match_into, greedy_match_matrix, hungarian_match, hungarian_match_matrix,
    Match, MatchScratch, ScoreMatrix,
};
pub use tracker::{
    build_tracks, build_tracks_brute, build_tracks_with, TrackBuilder, TrackPath, TrackerConfig,
    TrackerScratch,
};
pub use union_find::UnionFind;
