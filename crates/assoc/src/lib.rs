//! Data-association substrate for the Fixy / LOA reproduction.
//!
//! Section 4 of the paper: *"our DSL supports means of associating
//! observations together: across observation sources (observation bundles
//! …) and across time (tracks …)"*. The association itself is a classic
//! perception problem; this crate provides the machinery:
//!
//! * [`matching`] — one-shot assignment between two box sets: greedy
//!   highest-overlap-first (the paper's default behavior) and an exact
//!   Hungarian solver for the ablation,
//! * [`union_find`] — disjoint sets for multi-source bundling,
//! * [`bundler`] — group same-frame observations from different sources
//!   into observation bundles by IOU (the `TrackBundler` of Section 3),
//! * [`tracker`] — link bundles across adjacent frames into tracks by box
//!   overlap, with a configurable frame gap.
//!
//! Everything here is generic over "things that have a [`Box3`]"; the LOA
//! engine supplies its observation types.

pub mod bundler;
pub mod matching;
pub mod tracker;
pub mod union_find;

pub use bundler::{bundle_frame, BundleGroup, Bundler, IouBundler};
pub use matching::{greedy_match, hungarian_match, Match};
pub use tracker::{build_tracks, TrackPath, TrackerConfig};
pub use union_find::UnionFind;
