//! One-shot assignment between two sets scored by overlap.
//!
//! The paper associates observations greedily by box overlap; the Hungarian
//! solver is provided for the greedy-vs-optimal ablation bench (and as a
//! correctness oracle in tests).
//!
//! Scores live in a [`ScoreMatrix`]: a flat, possibly-sparse collection of
//! explicitly scored pairs with known dimensions. Entries never pushed are
//! *implicitly below threshold* (score 0) — the representation the
//! spatially-pruned tracker produces, where only candidate pairs whose
//! AABBs overlap are ever scored. The legacy `&[Vec<f64>]` entry points
//! remain as thin wrappers that score every pair explicitly.

use serde::{Deserialize, Serialize};

/// One matched pair: `left[i] ↔ right[j]` with its score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    pub left: usize,
    pub right: usize,
    pub score: f64,
}

/// A flat score matrix between `rows` left items and `cols` right items.
///
/// Only explicitly [`push`](Self::push)ed pairs carry a score; every
/// other pair is an implicit 0 (below any positive matching threshold).
/// For overlap scores this is exact, not an approximation: a pair whose
/// AABBs do not intersect has IOU exactly 0.
#[derive(Debug, Clone, Default)]
pub struct ScoreMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<Match>,
}

impl ScoreMatrix {
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear and set dimensions, keeping the entry allocation.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.entries.clear();
    }

    /// Record the score of pair `(left, right)`.
    #[inline]
    pub fn push(&mut self, left: usize, right: usize, score: f64) {
        debug_assert!(left < self.rows && right < self.cols);
        self.entries.push(Match { left, right, score });
    }

    /// Build a fully-dense matrix from nested rows (every pair explicit).
    /// Ragged rows are allowed; `cols` becomes the longest row.
    pub fn from_rows(scores: &[Vec<f64>]) -> Self {
        let rows = scores.len();
        let cols = scores.iter().map(Vec::len).max().unwrap_or(0);
        let mut m = ScoreMatrix { rows, cols, entries: Vec::new() };
        for (i, row) in scores.iter().enumerate() {
            for (j, &s) in row.iter().enumerate() {
                m.push(i, j, s);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The explicitly scored pairs, in push order.
    pub fn entries(&self) -> &[Match] {
        &self.entries
    }

    /// Materialize as a flat row-major dense matrix (implicit pairs = 0).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut dense = vec![0.0; self.rows * self.cols];
        for e in &self.entries {
            dense[e.left * self.cols + e.right] = e.score;
        }
        dense
    }
}

/// Reusable buffers for [`greedy_match_into`] — the tracker calls the
/// matcher once per frame and keeps one of these per engine instead of
/// reallocating.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    pairs: Vec<Match>,
    used_left: Vec<bool>,
    used_right: Vec<bool>,
}

/// Greedy maximum-score-first matching over a [`ScoreMatrix`].
///
/// Sorts all explicit pairs with `score >= min_score` by descending score
/// and takes each pair whose endpoints are both unused.
pub fn greedy_match_matrix(scores: &ScoreMatrix, min_score: f64) -> Vec<Match> {
    let mut scratch = MatchScratch::default();
    let mut out = Vec::new();
    greedy_match_into(scores, min_score, &mut scratch, &mut out);
    out
}

/// [`greedy_match_matrix`] with caller-owned scratch and output buffers
/// (both are cleared first).
pub fn greedy_match_into(
    scores: &ScoreMatrix,
    min_score: f64,
    scratch: &mut MatchScratch,
    out: &mut Vec<Match>,
) {
    scratch.pairs.clear();
    scratch.pairs.extend(
        scores
            .entries()
            .iter()
            .filter(|m| m.score >= min_score && m.score.is_finite()),
    );
    // Descending by score; ties broken by indices for determinism.
    scratch.pairs.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
    scratch.used_left.clear();
    scratch.used_left.resize(scores.rows(), false);
    scratch.used_right.clear();
    scratch.used_right.resize(scores.cols(), false);
    out.clear();
    for &m in &scratch.pairs {
        if !scratch.used_left[m.left] && !scratch.used_right[m.right] {
            scratch.used_left[m.left] = true;
            scratch.used_right[m.right] = true;
            out.push(m);
        }
    }
    out.sort_by_key(|m| (m.left, m.right));
}

/// Greedy matching over nested rows (legacy entry point; scores every
/// pair explicitly through [`ScoreMatrix::from_rows`]).
pub fn greedy_match(scores: &[Vec<f64>], min_score: f64) -> Vec<Match> {
    greedy_match_matrix(&ScoreMatrix::from_rows(scores), min_score)
}

/// Exact maximum-total-score matching (Hungarian algorithm, O(n³)) over a
/// [`ScoreMatrix`], with pairs scoring below `min_score` removed
/// afterwards. Implicit pairs participate with score 0 — identical to the
/// dense formulation whenever unscored pairs truly score 0 (the overlap
/// case the sparse tracker produces).
pub fn hungarian_match_matrix(scores: &ScoreMatrix, min_score: f64) -> Vec<Match> {
    let n = scores.rows();
    let m = scores.cols();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let dense = scores.to_dense();

    // Solve with the smaller side as rows; index arithmetic handles the
    // transpose on the flat buffer.
    let transpose = n > m;
    let (rows, cols) = if transpose { (m, n) } else { (n, m) };
    let at = |i: usize, j: usize| -> f64 {
        if transpose {
            dense[j * m + i]
        } else {
            dense[i * m + j]
        }
    };

    // Minimization form: cost = max_score - score (non-negative).
    let mut max_score = 0.0f64;
    for i in 0..rows {
        for j in 0..cols {
            max_score = max_score.max(at(i, j));
        }
    }
    let cost = |i: usize, j: usize| max_score - at(i, j);

    // Hungarian with potentials (1-indexed internals).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; rows + 1];
    let mut v = vec![0.0; cols + 1];
    let mut p = vec![0usize; cols + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; cols + 1];
    for i in 1..=rows {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = Vec::new();
    #[allow(clippy::needless_range_loop)] // j indexes both p and the score matrix
    for j in 1..=cols {
        let i = p[j];
        if i == 0 {
            continue;
        }
        let (left, right) = if transpose { (j - 1, i - 1) } else { (i - 1, j - 1) };
        let s = dense[left * m + right];
        if s >= min_score {
            out.push(Match { left, right, score: s });
        }
    }
    out.sort_by_key(|m| (m.left, m.right));
    out
}

/// Hungarian matching over nested rows (legacy entry point).
pub fn hungarian_match(scores: &[Vec<f64>], min_score: f64) -> Vec<Match> {
    hungarian_match_matrix(&ScoreMatrix::from_rows(scores), min_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn total(ms: &[Match]) -> f64 {
        ms.iter().map(|m| m.score).sum()
    }

    /// Exhaustive optimal assignment for small matrices (≤ ~6×6).
    fn brute_force_best(scores: &[Vec<f64>], min_score: f64) -> f64 {
        fn rec(scores: &[Vec<f64>], row: usize, used: &mut Vec<bool>, min_score: f64) -> f64 {
            if row == scores.len() {
                return 0.0;
            }
            // Option: leave this row unmatched.
            let mut best = rec(scores, row + 1, used, min_score);
            for j in 0..scores[row].len() {
                if !used[j] && scores[row][j] >= min_score {
                    used[j] = true;
                    best = best.max(scores[row][j] + rec(scores, row + 1, used, min_score));
                    used[j] = false;
                }
            }
            best
        }
        let m = scores.iter().map(Vec::len).max().unwrap_or(0);
        rec(scores, 0, &mut vec![false; m], min_score)
    }

    #[test]
    fn empty_inputs() {
        assert!(greedy_match(&[], 0.5).is_empty());
        assert!(hungarian_match(&[], 0.5).is_empty());
        let no_cols: Vec<Vec<f64>> = vec![vec![], vec![]];
        assert!(greedy_match(&no_cols, 0.5).is_empty());
        assert!(hungarian_match(&no_cols, 0.5).is_empty());
        let empty = ScoreMatrix::new();
        assert!(greedy_match_matrix(&empty, 0.0).is_empty());
        assert!(hungarian_match_matrix(&empty, 0.0).is_empty());
    }

    #[test]
    fn simple_diagonal() {
        let scores = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        for matcher in [greedy_match, hungarian_match] {
            let ms = matcher(&scores, 0.5);
            assert_eq!(ms.len(), 2);
            assert_eq!(ms[0], Match { left: 0, right: 0, score: 0.9 });
            assert_eq!(ms[1], Match { left: 1, right: 1, score: 0.8 });
        }
    }

    #[test]
    fn greedy_can_be_suboptimal_hungarian_is_not() {
        // Greedy takes (0,0)=0.9 then 1 gets nothing ≥ threshold at col 1;
        // optimal pairs (0,1)=0.8 and (1,0)=0.8.
        let scores = vec![vec![0.9, 0.8], vec![0.8, 0.0]];
        let g = greedy_match(&scores, 0.1);
        let h = hungarian_match(&scores, 0.1);
        assert!((total(&g) - 0.9).abs() < 1e-9, "greedy total {}", total(&g));
        assert!((total(&h) - 1.6).abs() < 1e-9, "hungarian total {}", total(&h));
    }

    #[test]
    fn threshold_filters_pairs() {
        let scores = vec![vec![0.4]];
        assert!(greedy_match(&scores, 0.5).is_empty());
        assert!(hungarian_match(&scores, 0.5).is_empty());
        assert_eq!(greedy_match(&scores, 0.3).len(), 1);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let scores = vec![vec![0.9], vec![0.8], vec![0.7]];
        let h = hungarian_match(&scores, 0.1);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].left, 0);
        let g = greedy_match(&scores, 0.1);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].left, 0);
    }

    #[test]
    fn rectangular_more_cols_than_rows() {
        let scores = vec![vec![0.1, 0.9, 0.3]];
        let h = hungarian_match(&scores, 0.05);
        assert_eq!(h, vec![Match { left: 0, right: 1, score: 0.9 }]);
    }

    #[test]
    fn matching_is_one_to_one() {
        let scores = vec![vec![0.9, 0.9, 0.9], vec![0.9, 0.9, 0.9], vec![0.9, 0.9, 0.9]];
        for matcher in [greedy_match, hungarian_match] {
            let ms = matcher(&scores, 0.5);
            assert_eq!(ms.len(), 3);
            let mut lefts: Vec<_> = ms.iter().map(|m| m.left).collect();
            let mut rights: Vec<_> = ms.iter().map(|m| m.right).collect();
            lefts.dedup();
            rights.sort();
            rights.dedup();
            assert_eq!(lefts.len(), 3);
            assert_eq!(rights.len(), 3);
        }
    }

    #[test]
    fn sparse_matrix_equals_dense_when_omissions_are_zero() {
        // A sparse matrix that skips exactly the zero entries must match
        // the dense formulation for both matchers — the contract the
        // spatially-pruned tracker relies on.
        let dense_rows = vec![vec![0.7, 0.0, 0.2], vec![0.0, 0.0, 0.9], vec![0.3, 0.6, 0.0]];
        let mut sparse = ScoreMatrix::new();
        sparse.reset(3, 3);
        for (i, row) in dense_rows.iter().enumerate() {
            for (j, &s) in row.iter().enumerate() {
                if s != 0.0 {
                    sparse.push(i, j, s);
                }
            }
        }
        // Greedy equivalence needs a positive threshold (at 0.0 the dense
        // form admits explicit zero-score pairs the sparse form never
        // sees); hungarian materializes the identical dense matrix either
        // way, so it agrees at 0.0 too.
        for min in [0.1, 0.5] {
            assert_eq!(
                greedy_match_matrix(&sparse, min),
                greedy_match(&dense_rows, min),
                "greedy at min {min}"
            );
        }
        for min in [0.0, 0.1, 0.5] {
            assert_eq!(
                hungarian_match_matrix(&sparse, min),
                hungarian_match(&dense_rows, min),
                "hungarian at min {min}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let m = ScoreMatrix::from_rows(&[vec![0.9, 0.8], vec![0.8, 0.1]]);
        let mut scratch = MatchScratch::default();
        let mut out = Vec::new();
        for _ in 0..3 {
            greedy_match_into(&m, 0.05, &mut scratch, &mut out);
            assert_eq!(out, greedy_match_matrix(&m, 0.05));
        }
    }

    #[test]
    fn to_dense_layout() {
        let mut m = ScoreMatrix::new();
        m.reset(2, 3);
        m.push(0, 2, 0.5);
        m.push(1, 0, 0.25);
        assert_eq!(m.to_dense(), vec![0.0, 0.0, 0.5, 0.25, 0.0, 0.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_hungarian_matches_brute_force(
            rows in 1usize..5, cols in 1usize..5, seed in 0u64..10_000,
        ) {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 1000) as f64 / 1000.0
            };
            let scores: Vec<Vec<f64>> =
                (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let h = hungarian_match(&scores, 0.0);
            let best = brute_force_best(&scores, 0.0);
            // Hungarian maximizes before thresholding at 0, so totals match.
            prop_assert!((total(&h) - best).abs() < 1e-9,
                "hungarian {} vs brute {best} on {:?}", total(&h), scores);
        }

        #[test]
        fn prop_greedy_never_beats_hungarian(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..10_000,
        ) {
            let mut state = seed.wrapping_add(13);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 1000) as f64 / 1000.0
            };
            let scores: Vec<Vec<f64>> =
                (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let g = greedy_match(&scores, 0.0);
            let h = hungarian_match(&scores, 0.0);
            prop_assert!(total(&g) <= total(&h) + 1e-9);
            // Both are valid one-to-one matchings.
            for ms in [&g, &h] {
                let mut seen_l = std::collections::BTreeSet::new();
                let mut seen_r = std::collections::BTreeSet::new();
                for m in ms.iter() {
                    prop_assert!(seen_l.insert(m.left));
                    prop_assert!(seen_r.insert(m.right));
                }
            }
        }

        #[test]
        fn prop_sparse_skip_zeros_equals_dense(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..10_000,
            min_pct in 1usize..60,
        ) {
            // Random matrices with plenty of exact zeros: the sparse
            // (zeros omitted) and dense paths must agree for both
            // matchers at any positive threshold (the tracker's regime —
            // at exactly 0, dense greedy admits zero-score pairs).
            let mut state = seed.wrapping_add(99);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((state >> 33) % 1000) as f64 / 1000.0;
                if v < 0.4 { 0.0 } else { v }
            };
            let scores: Vec<Vec<f64>> =
                (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let mut sparse = ScoreMatrix::new();
            sparse.reset(rows, cols);
            for (i, row) in scores.iter().enumerate() {
                for (j, &s) in row.iter().enumerate() {
                    if s != 0.0 {
                        sparse.push(i, j, s);
                    }
                }
            }
            let min = min_pct as f64 / 100.0;
            prop_assert_eq!(greedy_match_matrix(&sparse, min), greedy_match(&scores, min));
            prop_assert_eq!(
                hungarian_match_matrix(&sparse, min),
                hungarian_match(&scores, min)
            );
        }
    }
}
