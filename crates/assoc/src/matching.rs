//! One-shot assignment between two sets scored by overlap.
//!
//! The paper associates observations greedily by box overlap; the Hungarian
//! solver is provided for the greedy-vs-optimal ablation bench (and as a
//! correctness oracle in tests).

use serde::{Deserialize, Serialize};

/// One matched pair: `left[i] ↔ right[j]` with its score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    pub left: usize,
    pub right: usize,
    pub score: f64,
}

/// Greedy maximum-score-first matching.
///
/// Sorts all pairs with `score >= min_score` by descending score and takes
/// each pair whose endpoints are both unused. `scores[i][j]` is the score
/// between left item `i` and right item `j` (rows may be empty).
pub fn greedy_match(scores: &[Vec<f64>], min_score: f64) -> Vec<Match> {
    let mut pairs: Vec<Match> = Vec::new();
    for (i, row) in scores.iter().enumerate() {
        for (j, &s) in row.iter().enumerate() {
            if s >= min_score && s.is_finite() {
                pairs.push(Match { left: i, right: j, score: s });
            }
        }
    }
    // Descending by score; ties broken by indices for determinism.
    pairs.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
    let n_left = scores.len();
    let n_right = scores.iter().map(Vec::len).max().unwrap_or(0);
    let mut used_left = vec![false; n_left];
    let mut used_right = vec![false; n_right];
    let mut out = Vec::new();
    for m in pairs {
        if !used_left[m.left] && !used_right[m.right] {
            used_left[m.left] = true;
            used_right[m.right] = true;
            out.push(m);
        }
    }
    out.sort_by_key(|m| (m.left, m.right));
    out
}

/// Exact maximum-total-score matching (Hungarian algorithm, O(n³)), with
/// pairs scoring below `min_score` removed afterwards.
///
/// Scores must be finite; rectangular inputs are handled by solving with
/// the smaller side as rows.
pub fn hungarian_match(scores: &[Vec<f64>], min_score: f64) -> Vec<Match> {
    let n = scores.len();
    let m = scores.iter().map(Vec::len).max().unwrap_or(0);
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // Normalize to a dense rectangular matrix (absent entries = 0 score).
    let dense: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..m).map(|j| scores[i].get(j).copied().unwrap_or(0.0)).collect())
        .collect();

    type ScoreFn = Box<dyn Fn(usize, usize) -> f64>;
    let transpose = n > m;
    let (rows, cols, at): (usize, usize, ScoreFn) = if transpose {
        (m, n, Box::new(move |i, j| dense[j][i]))
    } else {
        let d = dense.clone();
        (n, m, Box::new(move |i, j| d[i][j]))
    };

    // Minimization form: cost = max_score - score (non-negative).
    let mut max_score = 0.0f64;
    for i in 0..rows {
        for j in 0..cols {
            max_score = max_score.max(at(i, j));
        }
    }
    let cost = |i: usize, j: usize| max_score - at(i, j);

    // Hungarian with potentials (1-indexed internals).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; rows + 1];
    let mut v = vec![0.0; cols + 1];
    let mut p = vec![0usize; cols + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; cols + 1];
    for i in 1..=rows {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=cols {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = Vec::new();
    #[allow(clippy::needless_range_loop)] // j indexes both p and the score matrix
    for j in 1..=cols {
        let i = p[j];
        if i == 0 {
            continue;
        }
        let (left, right) = if transpose { (j - 1, i - 1) } else { (i - 1, j - 1) };
        let s = scores[left].get(right).copied().unwrap_or(0.0);
        if s >= min_score {
            out.push(Match { left, right, score: s });
        }
    }
    out.sort_by_key(|m| (m.left, m.right));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn total(ms: &[Match]) -> f64 {
        ms.iter().map(|m| m.score).sum()
    }

    /// Exhaustive optimal assignment for small matrices (≤ ~6×6).
    fn brute_force_best(scores: &[Vec<f64>], min_score: f64) -> f64 {
        fn rec(scores: &[Vec<f64>], row: usize, used: &mut Vec<bool>, min_score: f64) -> f64 {
            if row == scores.len() {
                return 0.0;
            }
            // Option: leave this row unmatched.
            let mut best = rec(scores, row + 1, used, min_score);
            for j in 0..scores[row].len() {
                if !used[j] && scores[row][j] >= min_score {
                    used[j] = true;
                    best = best.max(scores[row][j] + rec(scores, row + 1, used, min_score));
                    used[j] = false;
                }
            }
            best
        }
        let m = scores.iter().map(Vec::len).max().unwrap_or(0);
        rec(scores, 0, &mut vec![false; m], min_score)
    }

    #[test]
    fn empty_inputs() {
        assert!(greedy_match(&[], 0.5).is_empty());
        assert!(hungarian_match(&[], 0.5).is_empty());
        let no_cols: Vec<Vec<f64>> = vec![vec![], vec![]];
        assert!(greedy_match(&no_cols, 0.5).is_empty());
        assert!(hungarian_match(&no_cols, 0.5).is_empty());
    }

    #[test]
    fn simple_diagonal() {
        let scores = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        for matcher in [greedy_match, hungarian_match] {
            let ms = matcher(&scores, 0.5);
            assert_eq!(ms.len(), 2);
            assert_eq!(ms[0], Match { left: 0, right: 0, score: 0.9 });
            assert_eq!(ms[1], Match { left: 1, right: 1, score: 0.8 });
        }
    }

    #[test]
    fn greedy_can_be_suboptimal_hungarian_is_not() {
        // Greedy takes (0,0)=0.9 then 1 gets nothing ≥ threshold at col 1;
        // optimal pairs (0,1)=0.8 and (1,0)=0.8.
        let scores = vec![vec![0.9, 0.8], vec![0.8, 0.0]];
        let g = greedy_match(&scores, 0.1);
        let h = hungarian_match(&scores, 0.1);
        assert!((total(&g) - 0.9).abs() < 1e-9, "greedy total {}", total(&g));
        assert!((total(&h) - 1.6).abs() < 1e-9, "hungarian total {}", total(&h));
    }

    #[test]
    fn threshold_filters_pairs() {
        let scores = vec![vec![0.4]];
        assert!(greedy_match(&scores, 0.5).is_empty());
        assert!(hungarian_match(&scores, 0.5).is_empty());
        assert_eq!(greedy_match(&scores, 0.3).len(), 1);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let scores = vec![vec![0.9], vec![0.8], vec![0.7]];
        let h = hungarian_match(&scores, 0.1);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].left, 0);
        let g = greedy_match(&scores, 0.1);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].left, 0);
    }

    #[test]
    fn rectangular_more_cols_than_rows() {
        let scores = vec![vec![0.1, 0.9, 0.3]];
        let h = hungarian_match(&scores, 0.05);
        assert_eq!(h, vec![Match { left: 0, right: 1, score: 0.9 }]);
    }

    #[test]
    fn matching_is_one_to_one() {
        let scores = vec![vec![0.9, 0.9, 0.9], vec![0.9, 0.9, 0.9], vec![0.9, 0.9, 0.9]];
        for matcher in [greedy_match, hungarian_match] {
            let ms = matcher(&scores, 0.5);
            assert_eq!(ms.len(), 3);
            let mut lefts: Vec<_> = ms.iter().map(|m| m.left).collect();
            let mut rights: Vec<_> = ms.iter().map(|m| m.right).collect();
            lefts.dedup();
            rights.sort();
            rights.dedup();
            assert_eq!(lefts.len(), 3);
            assert_eq!(rights.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_hungarian_matches_brute_force(
            rows in 1usize..5, cols in 1usize..5, seed in 0u64..10_000,
        ) {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 1000) as f64 / 1000.0
            };
            let scores: Vec<Vec<f64>> =
                (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let h = hungarian_match(&scores, 0.0);
            let best = brute_force_best(&scores, 0.0);
            // Hungarian maximizes before thresholding at 0, so totals match.
            prop_assert!((total(&h) - best).abs() < 1e-9,
                "hungarian {} vs brute {best} on {:?}", total(&h), scores);
        }

        #[test]
        fn prop_greedy_never_beats_hungarian(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..10_000,
        ) {
            let mut state = seed.wrapping_add(13);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 1000) as f64 / 1000.0
            };
            let scores: Vec<Vec<f64>> =
                (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let g = greedy_match(&scores, 0.0);
            let h = hungarian_match(&scores, 0.0);
            prop_assert!(total(&g) <= total(&h) + 1e-9);
            // Both are valid one-to-one matchings.
            for ms in [&g, &h] {
                let mut seen_l = std::collections::BTreeSet::new();
                let mut seen_r = std::collections::BTreeSet::new();
                for m in ms.iter() {
                    prop_assert!(seen_l.insert(m.left));
                    prop_assert!(seen_r.insert(m.right));
                }
            }
        }
    }
}
