/root/repo/target/release/librand.rlib: /root/repo/vendor/rand/src/lib.rs
