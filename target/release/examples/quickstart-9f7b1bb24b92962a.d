/root/repo/target/release/examples/quickstart-9f7b1bb24b92962a.d: crates/fixy/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9f7b1bb24b92962a: crates/fixy/../../examples/quickstart.rs

crates/fixy/../../examples/quickstart.rs:
