/root/repo/target/release/librayon.rlib: /root/repo/vendor/rayon/src/lib.rs
