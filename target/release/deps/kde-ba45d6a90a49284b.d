/root/repo/target/release/deps/kde-ba45d6a90a49284b.d: crates/bench/benches/kde.rs

/root/repo/target/release/deps/kde-ba45d6a90a49284b: crates/bench/benches/kde.rs

crates/bench/benches/kde.rs:
