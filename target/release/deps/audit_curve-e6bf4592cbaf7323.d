/root/repo/target/release/deps/audit_curve-e6bf4592cbaf7323.d: crates/bench/src/bin/audit_curve.rs

/root/repo/target/release/deps/audit_curve-e6bf4592cbaf7323: crates/bench/src/bin/audit_curve.rs

crates/bench/src/bin/audit_curve.rs:
