/root/repo/target/release/deps/geometry-132e3207c3aba786.d: crates/bench/benches/geometry.rs

/root/repo/target/release/deps/geometry-132e3207c3aba786: crates/bench/benches/geometry.rs

crates/bench/benches/geometry.rs:
