/root/repo/target/release/deps/loa_data-f52c46a9ad19d4fb.d: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

/root/repo/target/release/deps/libloa_data-f52c46a9ad19d4fb.rlib: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

/root/repo/target/release/deps/libloa_data-f52c46a9ad19d4fb.rmeta: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

crates/data/src/lib.rs:
crates/data/src/class.rs:
crates/data/src/detector.rs:
crates/data/src/io.rs:
crates/data/src/lidar.rs:
crates/data/src/scenarios.rs:
crates/data/src/scene.rs:
crates/data/src/types.rs:
crates/data/src/vendor.rs:
crates/data/src/world.rs:
