/root/repo/target/release/deps/missing_obs-2a8c72a9e651bb92.d: crates/bench/src/bin/missing_obs.rs

/root/repo/target/release/deps/missing_obs-2a8c72a9e651bb92: crates/bench/src/bin/missing_obs.rs

crates/bench/src/bin/missing_obs.rs:
