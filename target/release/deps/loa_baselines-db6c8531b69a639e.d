/root/repo/target/release/deps/loa_baselines-db6c8531b69a639e.d: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/uncertainty.rs

/root/repo/target/release/deps/loa_baselines-db6c8531b69a639e: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/uncertainty.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assertions.rs:
crates/baselines/src/ordering.rs:
crates/baselines/src/uncertainty.rs:
