/root/repo/target/release/deps/criterion-b9e090759af39530.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b9e090759af39530.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b9e090759af39530.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
