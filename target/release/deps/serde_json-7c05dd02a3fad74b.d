/root/repo/target/release/deps/serde_json-7c05dd02a3fad74b.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7c05dd02a3fad74b.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7c05dd02a3fad74b.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
