/root/repo/target/release/deps/serde_derive-07b7d7042d7e16b9.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-07b7d7042d7e16b9.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
