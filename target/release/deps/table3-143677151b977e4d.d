/root/repo/target/release/deps/table3-143677151b977e4d.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-143677151b977e4d: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
