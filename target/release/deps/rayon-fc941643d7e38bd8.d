/root/repo/target/release/deps/rayon-fc941643d7e38bd8.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-fc941643d7e38bd8.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-fc941643d7e38bd8.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
