/root/repo/target/release/deps/scene_runtime-3c50507b2c4257ce.d: crates/bench/benches/scene_runtime.rs

/root/repo/target/release/deps/scene_runtime-3c50507b2c4257ce: crates/bench/benches/scene_runtime.rs

crates/bench/benches/scene_runtime.rs:
