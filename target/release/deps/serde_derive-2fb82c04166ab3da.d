/root/repo/target/release/deps/serde_derive-2fb82c04166ab3da.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-2fb82c04166ab3da: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
