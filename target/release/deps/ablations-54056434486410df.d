/root/repo/target/release/deps/ablations-54056434486410df.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-54056434486410df: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
