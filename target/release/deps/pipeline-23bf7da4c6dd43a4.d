/root/repo/target/release/deps/pipeline-23bf7da4c6dd43a4.d: crates/bench/benches/pipeline.rs

/root/repo/target/release/deps/pipeline-23bf7da4c6dd43a4: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
