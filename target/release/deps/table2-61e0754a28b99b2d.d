/root/repo/target/release/deps/table2-61e0754a28b99b2d.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-61e0754a28b99b2d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
