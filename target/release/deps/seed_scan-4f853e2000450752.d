/root/repo/target/release/deps/seed_scan-4f853e2000450752.d: crates/eval/tests/seed_scan.rs

/root/repo/target/release/deps/seed_scan-4f853e2000450752: crates/eval/tests/seed_scan.rs

crates/eval/tests/seed_scan.rs:
