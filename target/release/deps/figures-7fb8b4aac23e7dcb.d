/root/repo/target/release/deps/figures-7fb8b4aac23e7dcb.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-7fb8b4aac23e7dcb: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
