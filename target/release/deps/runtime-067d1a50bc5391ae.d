/root/repo/target/release/deps/runtime-067d1a50bc5391ae.d: crates/bench/src/bin/runtime.rs

/root/repo/target/release/deps/runtime-067d1a50bc5391ae: crates/bench/src/bin/runtime.rs

crates/bench/src/bin/runtime.rs:
