/root/repo/target/release/deps/serde-b8c327584e9c34f7.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b8c327584e9c34f7.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b8c327584e9c34f7.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
