/root/repo/target/release/deps/model_errors-ddc6e430ef3008da.d: crates/bench/src/bin/model_errors.rs

/root/repo/target/release/deps/model_errors-ddc6e430ef3008da: crates/bench/src/bin/model_errors.rs

crates/bench/src/bin/model_errors.rs:
