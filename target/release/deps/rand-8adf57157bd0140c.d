/root/repo/target/release/deps/rand-8adf57157bd0140c.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-8adf57157bd0140c: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
