/root/repo/target/release/deps/model_errors-bebc64226f269e6b.d: crates/bench/src/bin/model_errors.rs

/root/repo/target/release/deps/model_errors-bebc64226f269e6b: crates/bench/src/bin/model_errors.rs

crates/bench/src/bin/model_errors.rs:
