/root/repo/target/release/deps/loa_data-cd3c75b864e86891.d: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

/root/repo/target/release/deps/loa_data-cd3c75b864e86891: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

crates/data/src/lib.rs:
crates/data/src/class.rs:
crates/data/src/detector.rs:
crates/data/src/io.rs:
crates/data/src/lidar.rs:
crates/data/src/scenarios.rs:
crates/data/src/scene.rs:
crates/data/src/types.rs:
crates/data/src/vendor.rs:
crates/data/src/world.rs:
