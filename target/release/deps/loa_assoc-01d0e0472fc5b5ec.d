/root/repo/target/release/deps/loa_assoc-01d0e0472fc5b5ec.d: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

/root/repo/target/release/deps/libloa_assoc-01d0e0472fc5b5ec.rlib: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

/root/repo/target/release/deps/libloa_assoc-01d0e0472fc5b5ec.rmeta: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

crates/assoc/src/lib.rs:
crates/assoc/src/bundler.rs:
crates/assoc/src/matching.rs:
crates/assoc/src/tracker.rs:
crates/assoc/src/union_find.rs:
