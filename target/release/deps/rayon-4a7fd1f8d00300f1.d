/root/repo/target/release/deps/rayon-4a7fd1f8d00300f1.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-4a7fd1f8d00300f1: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
