/root/repo/target/release/deps/loa_graph-19dd3ee92658367d.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

/root/repo/target/release/deps/libloa_graph-19dd3ee92658367d.rlib: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

/root/repo/target/release/deps/libloa_graph-19dd3ee92658367d.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/score.rs:
crates/graph/src/sum_product.rs:
