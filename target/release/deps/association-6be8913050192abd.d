/root/repo/target/release/deps/association-6be8913050192abd.d: crates/bench/benches/association.rs

/root/repo/target/release/deps/association-6be8913050192abd: crates/bench/benches/association.rs

crates/bench/benches/association.rs:
