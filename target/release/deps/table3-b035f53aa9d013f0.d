/root/repo/target/release/deps/table3-b035f53aa9d013f0.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-b035f53aa9d013f0: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
