/root/repo/target/release/deps/proptest-4ae6b64bcfc17381.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4ae6b64bcfc17381.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-4ae6b64bcfc17381.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
