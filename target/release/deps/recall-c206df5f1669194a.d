/root/repo/target/release/deps/recall-c206df5f1669194a.d: crates/bench/src/bin/recall.rs

/root/repo/target/release/deps/recall-c206df5f1669194a: crates/bench/src/bin/recall.rs

crates/bench/src/bin/recall.rs:
