/root/repo/target/release/deps/serde-46012109ce9b2cf5.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-46012109ce9b2cf5: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
