/root/repo/target/release/deps/loa_geom-60cc5b1e8abf553e.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

/root/repo/target/release/deps/loa_geom-60cc5b1e8abf553e: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/box3.rs:
crates/geom/src/iou.rs:
crates/geom/src/polygon.rs:
crates/geom/src/pose.rs:
crates/geom/src/vec.rs:
