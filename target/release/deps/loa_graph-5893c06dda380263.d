/root/repo/target/release/deps/loa_graph-5893c06dda380263.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

/root/repo/target/release/deps/loa_graph-5893c06dda380263: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/score.rs:
crates/graph/src/sum_product.rs:
