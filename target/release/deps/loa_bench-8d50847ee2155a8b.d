/root/repo/target/release/deps/loa_bench-8d50847ee2155a8b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/loa_bench-8d50847ee2155a8b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
