/root/repo/target/release/deps/rand_distr-dda87da9bc7d208b.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/rand_distr-dda87da9bc7d208b: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
