/root/repo/target/release/deps/fixy-3a2a5362552ed7ee.d: crates/fixy/src/lib.rs

/root/repo/target/release/deps/fixy-3a2a5362552ed7ee: crates/fixy/src/lib.rs

crates/fixy/src/lib.rs:
