/root/repo/target/release/deps/audit_curve-4723fbec1ce79e0f.d: crates/bench/src/bin/audit_curve.rs

/root/repo/target/release/deps/audit_curve-4723fbec1ce79e0f: crates/bench/src/bin/audit_curve.rs

crates/bench/src/bin/audit_curve.rs:
