/root/repo/target/release/deps/serde_json-550477ccb1ba3b59.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-550477ccb1ba3b59: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
