/root/repo/target/release/deps/fixy-f840b9becdff89cc.d: crates/fixy/src/lib.rs

/root/repo/target/release/deps/libfixy-f840b9becdff89cc.rlib: crates/fixy/src/lib.rs

/root/repo/target/release/deps/libfixy-f840b9becdff89cc.rmeta: crates/fixy/src/lib.rs

crates/fixy/src/lib.rs:
