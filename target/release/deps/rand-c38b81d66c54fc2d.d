/root/repo/target/release/deps/rand-c38b81d66c54fc2d.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-c38b81d66c54fc2d.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-c38b81d66c54fc2d.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
