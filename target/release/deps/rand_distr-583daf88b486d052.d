/root/repo/target/release/deps/rand_distr-583daf88b486d052.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-583daf88b486d052.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-583daf88b486d052.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
