/root/repo/target/release/deps/loa_render-556165baf5db8385.d: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

/root/repo/target/release/deps/loa_render-556165baf5db8385: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

crates/render/src/lib.rs:
crates/render/src/ascii.rs:
crates/render/src/svg.rs:
