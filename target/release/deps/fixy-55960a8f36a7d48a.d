/root/repo/target/release/deps/fixy-55960a8f36a7d48a.d: crates/cli/src/main.rs

/root/repo/target/release/deps/fixy-55960a8f36a7d48a: crates/cli/src/main.rs

crates/cli/src/main.rs:
