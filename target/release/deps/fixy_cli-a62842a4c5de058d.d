/root/repo/target/release/deps/fixy_cli-a62842a4c5de058d.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libfixy_cli-a62842a4c5de058d.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libfixy_cli-a62842a4c5de058d.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
