/root/repo/target/release/deps/proptest-1c8e30299f897feb.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-1c8e30299f897feb: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
