/root/repo/target/release/deps/loa_render-2c37714a23ae0219.d: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

/root/repo/target/release/deps/libloa_render-2c37714a23ae0219.rlib: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

/root/repo/target/release/deps/libloa_render-2c37714a23ae0219.rmeta: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

crates/render/src/lib.rs:
crates/render/src/ascii.rs:
crates/render/src/svg.rs:
