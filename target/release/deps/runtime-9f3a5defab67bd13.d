/root/repo/target/release/deps/runtime-9f3a5defab67bd13.d: crates/bench/src/bin/runtime.rs

/root/repo/target/release/deps/runtime-9f3a5defab67bd13: crates/bench/src/bin/runtime.rs

crates/bench/src/bin/runtime.rs:
