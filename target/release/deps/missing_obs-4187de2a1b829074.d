/root/repo/target/release/deps/missing_obs-4187de2a1b829074.d: crates/bench/src/bin/missing_obs.rs

/root/repo/target/release/deps/missing_obs-4187de2a1b829074: crates/bench/src/bin/missing_obs.rs

crates/bench/src/bin/missing_obs.rs:
