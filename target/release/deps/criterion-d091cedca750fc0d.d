/root/repo/target/release/deps/criterion-d091cedca750fc0d.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-d091cedca750fc0d: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
