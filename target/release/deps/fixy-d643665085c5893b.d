/root/repo/target/release/deps/fixy-d643665085c5893b.d: crates/cli/src/main.rs

/root/repo/target/release/deps/fixy-d643665085c5893b: crates/cli/src/main.rs

crates/cli/src/main.rs:
