/root/repo/target/release/deps/loa_baselines-58c59c0466b363ab.d: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs

/root/repo/target/release/deps/libloa_baselines-58c59c0466b363ab.rlib: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs

/root/repo/target/release/deps/libloa_baselines-58c59c0466b363ab.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assertions.rs:
crates/baselines/src/ordering.rs:
crates/baselines/src/ranker.rs:
crates/baselines/src/uncertainty.rs:
