/root/repo/target/release/deps/ablation_features-45bbc3031f24d466.d: crates/bench/src/bin/ablation_features.rs

/root/repo/target/release/deps/ablation_features-45bbc3031f24d466: crates/bench/src/bin/ablation_features.rs

crates/bench/src/bin/ablation_features.rs:
