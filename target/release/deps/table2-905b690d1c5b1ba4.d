/root/repo/target/release/deps/table2-905b690d1c5b1ba4.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-905b690d1c5b1ba4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
