/root/repo/target/release/deps/fixy_cli-b50c8b1f97976024.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/fixy_cli-b50c8b1f97976024: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
