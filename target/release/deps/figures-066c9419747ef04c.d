/root/repo/target/release/deps/figures-066c9419747ef04c.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-066c9419747ef04c: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
