/root/repo/target/release/deps/ablation_features-d210e63056256954.d: crates/bench/src/bin/ablation_features.rs

/root/repo/target/release/deps/ablation_features-d210e63056256954: crates/bench/src/bin/ablation_features.rs

crates/bench/src/bin/ablation_features.rs:
