/root/repo/target/release/deps/loa_assoc-b62fdfc4b78bb622.d: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

/root/repo/target/release/deps/loa_assoc-b62fdfc4b78bb622: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

crates/assoc/src/lib.rs:
crates/assoc/src/bundler.rs:
crates/assoc/src/matching.rs:
crates/assoc/src/tracker.rs:
crates/assoc/src/union_find.rs:
