/root/repo/target/release/deps/loa_bench-e6d54c570609388f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libloa_bench-e6d54c570609388f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libloa_bench-e6d54c570609388f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
