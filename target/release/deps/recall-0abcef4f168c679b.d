/root/repo/target/release/deps/recall-0abcef4f168c679b.d: crates/bench/src/bin/recall.rs

/root/repo/target/release/deps/recall-0abcef4f168c679b: crates/bench/src/bin/recall.rs

crates/bench/src/bin/recall.rs:
