/root/repo/target/debug/librand_distr.rlib: /root/repo/vendor/rand/src/lib.rs /root/repo/vendor/rand_distr/src/lib.rs
