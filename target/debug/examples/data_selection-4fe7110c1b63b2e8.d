/root/repo/target/debug/examples/data_selection-4fe7110c1b63b2e8.d: crates/fixy/../../examples/data_selection.rs Cargo.toml

/root/repo/target/debug/examples/libdata_selection-4fe7110c1b63b2e8.rmeta: crates/fixy/../../examples/data_selection.rs Cargo.toml

crates/fixy/../../examples/data_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
