/root/repo/target/debug/examples/custom_features-4d6abaed67e0623c.d: crates/fixy/../../examples/custom_features.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_features-4d6abaed67e0623c.rmeta: crates/fixy/../../examples/custom_features.rs Cargo.toml

crates/fixy/../../examples/custom_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
