/root/repo/target/debug/examples/label_audit-c3be8558e87e05c2.d: crates/fixy/../../examples/label_audit.rs Cargo.toml

/root/repo/target/debug/examples/liblabel_audit-c3be8558e87e05c2.rmeta: crates/fixy/../../examples/label_audit.rs Cargo.toml

crates/fixy/../../examples/label_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
