/root/repo/target/debug/examples/model_errors-4ee4543ac3d13d7f.d: crates/fixy/../../examples/model_errors.rs

/root/repo/target/debug/examples/model_errors-4ee4543ac3d13d7f: crates/fixy/../../examples/model_errors.rs

crates/fixy/../../examples/model_errors.rs:
