/root/repo/target/debug/examples/data_selection-9dbec5fd85450e84.d: crates/fixy/../../examples/data_selection.rs

/root/repo/target/debug/examples/data_selection-9dbec5fd85450e84: crates/fixy/../../examples/data_selection.rs

crates/fixy/../../examples/data_selection.rs:
