/root/repo/target/debug/examples/quickstart-df754bab95134e9f.d: crates/fixy/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-df754bab95134e9f: crates/fixy/../../examples/quickstart.rs

crates/fixy/../../examples/quickstart.rs:
