/root/repo/target/debug/examples/label_audit-e47f477dde0095ce.d: crates/fixy/../../examples/label_audit.rs

/root/repo/target/debug/examples/label_audit-e47f477dde0095ce: crates/fixy/../../examples/label_audit.rs

crates/fixy/../../examples/label_audit.rs:
