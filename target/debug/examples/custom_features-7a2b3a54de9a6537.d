/root/repo/target/debug/examples/custom_features-7a2b3a54de9a6537.d: crates/fixy/../../examples/custom_features.rs

/root/repo/target/debug/examples/custom_features-7a2b3a54de9a6537: crates/fixy/../../examples/custom_features.rs

crates/fixy/../../examples/custom_features.rs:
