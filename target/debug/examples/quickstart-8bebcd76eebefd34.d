/root/repo/target/debug/examples/quickstart-8bebcd76eebefd34.d: crates/fixy/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8bebcd76eebefd34.rmeta: crates/fixy/../../examples/quickstart.rs Cargo.toml

crates/fixy/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
