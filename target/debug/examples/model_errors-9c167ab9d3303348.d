/root/repo/target/debug/examples/model_errors-9c167ab9d3303348.d: crates/fixy/../../examples/model_errors.rs

/root/repo/target/debug/examples/model_errors-9c167ab9d3303348: crates/fixy/../../examples/model_errors.rs

crates/fixy/../../examples/model_errors.rs:
