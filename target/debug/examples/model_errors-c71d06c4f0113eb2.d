/root/repo/target/debug/examples/model_errors-c71d06c4f0113eb2.d: crates/fixy/../../examples/model_errors.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_errors-c71d06c4f0113eb2.rmeta: crates/fixy/../../examples/model_errors.rs Cargo.toml

crates/fixy/../../examples/model_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
