/root/repo/target/debug/deps/loa_bench-460258eef43864ef.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/loa_bench-460258eef43864ef: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
