/root/repo/target/debug/deps/table2-7e16a32b8603cbff.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-7e16a32b8603cbff.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
