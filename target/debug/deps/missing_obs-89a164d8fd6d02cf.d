/root/repo/target/debug/deps/missing_obs-89a164d8fd6d02cf.d: crates/bench/src/bin/missing_obs.rs Cargo.toml

/root/repo/target/debug/deps/libmissing_obs-89a164d8fd6d02cf.rmeta: crates/bench/src/bin/missing_obs.rs Cargo.toml

crates/bench/src/bin/missing_obs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
