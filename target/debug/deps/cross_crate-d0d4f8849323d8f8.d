/root/repo/target/debug/deps/cross_crate-d0d4f8849323d8f8.d: crates/fixy/../../tests/cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate-d0d4f8849323d8f8.rmeta: crates/fixy/../../tests/cross_crate.rs Cargo.toml

crates/fixy/../../tests/cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
