/root/repo/target/debug/deps/missing_obs-edf112f4932dbc8e.d: crates/bench/src/bin/missing_obs.rs

/root/repo/target/debug/deps/missing_obs-edf112f4932dbc8e: crates/bench/src/bin/missing_obs.rs

crates/bench/src/bin/missing_obs.rs:
