/root/repo/target/debug/deps/loa_baselines-ef4033b55ed8d10f.d: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs

/root/repo/target/debug/deps/libloa_baselines-ef4033b55ed8d10f.rlib: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs

/root/repo/target/debug/deps/libloa_baselines-ef4033b55ed8d10f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assertions.rs:
crates/baselines/src/ordering.rs:
crates/baselines/src/ranker.rs:
crates/baselines/src/uncertainty.rs:
