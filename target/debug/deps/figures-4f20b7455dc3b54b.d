/root/repo/target/debug/deps/figures-4f20b7455dc3b54b.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-4f20b7455dc3b54b: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
