/root/repo/target/debug/deps/model_errors-84aed593b8eff8f4.d: crates/bench/src/bin/model_errors.rs

/root/repo/target/debug/deps/model_errors-84aed593b8eff8f4: crates/bench/src/bin/model_errors.rs

crates/bench/src/bin/model_errors.rs:
