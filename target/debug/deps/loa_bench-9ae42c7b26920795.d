/root/repo/target/debug/deps/loa_bench-9ae42c7b26920795.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libloa_bench-9ae42c7b26920795.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
