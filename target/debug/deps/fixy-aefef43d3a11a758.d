/root/repo/target/debug/deps/fixy-aefef43d3a11a758.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/fixy-aefef43d3a11a758: crates/cli/src/main.rs

crates/cli/src/main.rs:
