/root/repo/target/debug/deps/runtime-a09329fe7dca4fd6.d: crates/bench/src/bin/runtime.rs

/root/repo/target/debug/deps/runtime-a09329fe7dca4fd6: crates/bench/src/bin/runtime.rs

crates/bench/src/bin/runtime.rs:
