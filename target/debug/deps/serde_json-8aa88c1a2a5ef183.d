/root/repo/target/debug/deps/serde_json-8aa88c1a2a5ef183.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-8aa88c1a2a5ef183: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
