/root/repo/target/debug/deps/pipeline-aa106b9adad75142.d: crates/fixy/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-aa106b9adad75142: crates/fixy/../../tests/pipeline.rs

crates/fixy/../../tests/pipeline.rs:
