/root/repo/target/debug/deps/rand-893e05218ec02f8d.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-893e05218ec02f8d: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
