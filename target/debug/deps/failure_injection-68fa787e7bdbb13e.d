/root/repo/target/debug/deps/failure_injection-68fa787e7bdbb13e.d: crates/fixy/../../tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-68fa787e7bdbb13e.rmeta: crates/fixy/../../tests/failure_injection.rs Cargo.toml

crates/fixy/../../tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
