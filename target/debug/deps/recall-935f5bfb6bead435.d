/root/repo/target/debug/deps/recall-935f5bfb6bead435.d: crates/bench/src/bin/recall.rs

/root/repo/target/debug/deps/recall-935f5bfb6bead435: crates/bench/src/bin/recall.rs

crates/bench/src/bin/recall.rs:
