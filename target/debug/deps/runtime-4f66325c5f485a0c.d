/root/repo/target/debug/deps/runtime-4f66325c5f485a0c.d: crates/bench/src/bin/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-4f66325c5f485a0c.rmeta: crates/bench/src/bin/runtime.rs Cargo.toml

crates/bench/src/bin/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
