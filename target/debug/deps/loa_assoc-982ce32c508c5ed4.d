/root/repo/target/debug/deps/loa_assoc-982ce32c508c5ed4.d: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs Cargo.toml

/root/repo/target/debug/deps/libloa_assoc-982ce32c508c5ed4.rmeta: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs Cargo.toml

crates/assoc/src/lib.rs:
crates/assoc/src/bundler.rs:
crates/assoc/src/matching.rs:
crates/assoc/src/tracker.rs:
crates/assoc/src/union_find.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
