/root/repo/target/debug/deps/fixy-fa797f95619aec4f.d: crates/fixy/src/lib.rs

/root/repo/target/debug/deps/fixy-fa797f95619aec4f: crates/fixy/src/lib.rs

crates/fixy/src/lib.rs:
