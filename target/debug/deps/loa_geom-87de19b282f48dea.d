/root/repo/target/debug/deps/loa_geom-87de19b282f48dea.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs Cargo.toml

/root/repo/target/debug/deps/libloa_geom-87de19b282f48dea.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/box3.rs:
crates/geom/src/iou.rs:
crates/geom/src/polygon.rs:
crates/geom/src/pose.rs:
crates/geom/src/vec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
