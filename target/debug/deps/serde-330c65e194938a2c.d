/root/repo/target/debug/deps/serde-330c65e194938a2c.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-330c65e194938a2c: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
