/root/repo/target/debug/deps/association-89343e33de408508.d: crates/bench/benches/association.rs Cargo.toml

/root/repo/target/debug/deps/libassociation-89343e33de408508.rmeta: crates/bench/benches/association.rs Cargo.toml

crates/bench/benches/association.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
