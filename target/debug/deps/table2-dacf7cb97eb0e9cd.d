/root/repo/target/debug/deps/table2-dacf7cb97eb0e9cd.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-dacf7cb97eb0e9cd.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
