/root/repo/target/debug/deps/fixy-8383b9e7e5e40c9c.d: crates/fixy/src/lib.rs

/root/repo/target/debug/deps/libfixy-8383b9e7e5e40c9c.rlib: crates/fixy/src/lib.rs

/root/repo/target/debug/deps/libfixy-8383b9e7e5e40c9c.rmeta: crates/fixy/src/lib.rs

crates/fixy/src/lib.rs:
