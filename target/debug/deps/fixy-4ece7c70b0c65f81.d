/root/repo/target/debug/deps/fixy-4ece7c70b0c65f81.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libfixy-4ece7c70b0c65f81.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
