/root/repo/target/debug/deps/loa_render-7de3ced4ebf1798f.d: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

/root/repo/target/debug/deps/loa_render-7de3ced4ebf1798f: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

crates/render/src/lib.rs:
crates/render/src/ascii.rs:
crates/render/src/svg.rs:
