/root/repo/target/debug/deps/cross_crate-e0591150873fb5a8.d: crates/fixy/../../tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-e0591150873fb5a8: crates/fixy/../../tests/cross_crate.rs

crates/fixy/../../tests/cross_crate.rs:
