/root/repo/target/debug/deps/runtime-34e0c8cd3a338941.d: crates/bench/src/bin/runtime.rs

/root/repo/target/debug/deps/runtime-34e0c8cd3a338941: crates/bench/src/bin/runtime.rs

crates/bench/src/bin/runtime.rs:
