/root/repo/target/debug/deps/paper_shapes-d42b505958ed5ffd.d: crates/fixy/../../tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-d42b505958ed5ffd: crates/fixy/../../tests/paper_shapes.rs

crates/fixy/../../tests/paper_shapes.rs:
