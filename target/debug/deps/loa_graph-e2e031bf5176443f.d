/root/repo/target/debug/deps/loa_graph-e2e031bf5176443f.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

/root/repo/target/debug/deps/libloa_graph-e2e031bf5176443f.rlib: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

/root/repo/target/debug/deps/libloa_graph-e2e031bf5176443f.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/score.rs:
crates/graph/src/sum_product.rs:
