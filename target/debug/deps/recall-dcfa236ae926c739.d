/root/repo/target/debug/deps/recall-dcfa236ae926c739.d: crates/bench/src/bin/recall.rs Cargo.toml

/root/repo/target/debug/deps/librecall-dcfa236ae926c739.rmeta: crates/bench/src/bin/recall.rs Cargo.toml

crates/bench/src/bin/recall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
