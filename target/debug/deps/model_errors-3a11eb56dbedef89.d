/root/repo/target/debug/deps/model_errors-3a11eb56dbedef89.d: crates/bench/src/bin/model_errors.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_errors-3a11eb56dbedef89.rmeta: crates/bench/src/bin/model_errors.rs Cargo.toml

crates/bench/src/bin/model_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
