/root/repo/target/debug/deps/loa_data-25b8ac0f31f12b5d.d: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

/root/repo/target/debug/deps/libloa_data-25b8ac0f31f12b5d.rlib: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

/root/repo/target/debug/deps/libloa_data-25b8ac0f31f12b5d.rmeta: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

crates/data/src/lib.rs:
crates/data/src/class.rs:
crates/data/src/detector.rs:
crates/data/src/io.rs:
crates/data/src/lidar.rs:
crates/data/src/scenarios.rs:
crates/data/src/scene.rs:
crates/data/src/types.rs:
crates/data/src/vendor.rs:
crates/data/src/world.rs:
