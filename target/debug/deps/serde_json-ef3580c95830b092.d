/root/repo/target/debug/deps/serde_json-ef3580c95830b092.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-ef3580c95830b092.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
