/root/repo/target/debug/deps/loa_data-e553d12e09aef528.d: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libloa_data-e553d12e09aef528.rmeta: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/class.rs:
crates/data/src/detector.rs:
crates/data/src/io.rs:
crates/data/src/lidar.rs:
crates/data/src/scenarios.rs:
crates/data/src/scene.rs:
crates/data/src/types.rs:
crates/data/src/vendor.rs:
crates/data/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
