/root/repo/target/debug/deps/loa_data-20a8ed5781bdc11e.d: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

/root/repo/target/debug/deps/loa_data-20a8ed5781bdc11e: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

crates/data/src/lib.rs:
crates/data/src/class.rs:
crates/data/src/detector.rs:
crates/data/src/io.rs:
crates/data/src/lidar.rs:
crates/data/src/scenarios.rs:
crates/data/src/scene.rs:
crates/data/src/types.rs:
crates/data/src/vendor.rs:
crates/data/src/world.rs:
