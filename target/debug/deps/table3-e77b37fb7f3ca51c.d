/root/repo/target/debug/deps/table3-e77b37fb7f3ca51c.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-e77b37fb7f3ca51c.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
