/root/repo/target/debug/deps/figures-edf5effef7d98255.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-edf5effef7d98255.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
