/root/repo/target/debug/deps/fixy_cli-6fef8ccaa95db64f.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libfixy_cli-6fef8ccaa95db64f.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libfixy_cli-6fef8ccaa95db64f.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
