/root/repo/target/debug/deps/loa_geom-2f3737253cd580eb.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

/root/repo/target/debug/deps/libloa_geom-2f3737253cd580eb.rlib: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

/root/repo/target/debug/deps/libloa_geom-2f3737253cd580eb.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/box3.rs:
crates/geom/src/iou.rs:
crates/geom/src/polygon.rs:
crates/geom/src/pose.rs:
crates/geom/src/vec.rs:
