/root/repo/target/debug/deps/loa_graph-f0d0fd4cac20c2c4.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

/root/repo/target/debug/deps/libloa_graph-f0d0fd4cac20c2c4.rlib: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

/root/repo/target/debug/deps/libloa_graph-f0d0fd4cac20c2c4.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/score.rs:
crates/graph/src/sum_product.rs:
