/root/repo/target/debug/deps/table2-bf7f298704deddbe.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-bf7f298704deddbe: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
