/root/repo/target/debug/deps/ablation_features-a33241eb3764cc54.d: crates/bench/src/bin/ablation_features.rs

/root/repo/target/debug/deps/ablation_features-a33241eb3764cc54: crates/bench/src/bin/ablation_features.rs

crates/bench/src/bin/ablation_features.rs:
