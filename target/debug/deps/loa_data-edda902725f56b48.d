/root/repo/target/debug/deps/loa_data-edda902725f56b48.d: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

/root/repo/target/debug/deps/libloa_data-edda902725f56b48.rlib: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

/root/repo/target/debug/deps/libloa_data-edda902725f56b48.rmeta: crates/data/src/lib.rs crates/data/src/class.rs crates/data/src/detector.rs crates/data/src/io.rs crates/data/src/lidar.rs crates/data/src/scenarios.rs crates/data/src/scene.rs crates/data/src/types.rs crates/data/src/vendor.rs crates/data/src/world.rs

crates/data/src/lib.rs:
crates/data/src/class.rs:
crates/data/src/detector.rs:
crates/data/src/io.rs:
crates/data/src/lidar.rs:
crates/data/src/scenarios.rs:
crates/data/src/scene.rs:
crates/data/src/types.rs:
crates/data/src/vendor.rs:
crates/data/src/world.rs:
