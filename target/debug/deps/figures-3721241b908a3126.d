/root/repo/target/debug/deps/figures-3721241b908a3126.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-3721241b908a3126.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
