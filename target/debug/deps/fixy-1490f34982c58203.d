/root/repo/target/debug/deps/fixy-1490f34982c58203.d: crates/fixy/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfixy-1490f34982c58203.rmeta: crates/fixy/src/lib.rs Cargo.toml

crates/fixy/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
