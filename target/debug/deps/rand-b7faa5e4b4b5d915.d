/root/repo/target/debug/deps/rand-b7faa5e4b4b5d915.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-b7faa5e4b4b5d915.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
