/root/repo/target/debug/deps/rand-7a9c533de924a568.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7a9c533de924a568.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7a9c533de924a568.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
