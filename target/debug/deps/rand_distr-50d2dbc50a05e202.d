/root/repo/target/debug/deps/rand_distr-50d2dbc50a05e202.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/rand_distr-50d2dbc50a05e202: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
