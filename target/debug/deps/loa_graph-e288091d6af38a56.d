/root/repo/target/debug/deps/loa_graph-e288091d6af38a56.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs Cargo.toml

/root/repo/target/debug/deps/libloa_graph-e288091d6af38a56.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/score.rs:
crates/graph/src/sum_product.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
