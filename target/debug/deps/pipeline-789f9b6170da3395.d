/root/repo/target/debug/deps/pipeline-789f9b6170da3395.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-789f9b6170da3395.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
