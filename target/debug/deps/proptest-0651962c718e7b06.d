/root/repo/target/debug/deps/proptest-0651962c718e7b06.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0651962c718e7b06.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
