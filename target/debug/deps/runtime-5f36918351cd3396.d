/root/repo/target/debug/deps/runtime-5f36918351cd3396.d: crates/bench/src/bin/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-5f36918351cd3396.rmeta: crates/bench/src/bin/runtime.rs Cargo.toml

crates/bench/src/bin/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
