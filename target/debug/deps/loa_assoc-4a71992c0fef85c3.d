/root/repo/target/debug/deps/loa_assoc-4a71992c0fef85c3.d: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

/root/repo/target/debug/deps/libloa_assoc-4a71992c0fef85c3.rlib: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

/root/repo/target/debug/deps/libloa_assoc-4a71992c0fef85c3.rmeta: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

crates/assoc/src/lib.rs:
crates/assoc/src/bundler.rs:
crates/assoc/src/matching.rs:
crates/assoc/src/tracker.rs:
crates/assoc/src/union_find.rs:
