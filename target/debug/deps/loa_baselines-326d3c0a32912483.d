/root/repo/target/debug/deps/loa_baselines-326d3c0a32912483.d: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/uncertainty.rs

/root/repo/target/debug/deps/libloa_baselines-326d3c0a32912483.rlib: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/uncertainty.rs

/root/repo/target/debug/deps/libloa_baselines-326d3c0a32912483.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/uncertainty.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assertions.rs:
crates/baselines/src/ordering.rs:
crates/baselines/src/uncertainty.rs:
