/root/repo/target/debug/deps/loa_assoc-8ee5d24c17f29531.d: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

/root/repo/target/debug/deps/libloa_assoc-8ee5d24c17f29531.rlib: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

/root/repo/target/debug/deps/libloa_assoc-8ee5d24c17f29531.rmeta: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

crates/assoc/src/lib.rs:
crates/assoc/src/bundler.rs:
crates/assoc/src/matching.rs:
crates/assoc/src/tracker.rs:
crates/assoc/src/union_find.rs:
