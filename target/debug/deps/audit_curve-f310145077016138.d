/root/repo/target/debug/deps/audit_curve-f310145077016138.d: crates/bench/src/bin/audit_curve.rs Cargo.toml

/root/repo/target/debug/deps/libaudit_curve-f310145077016138.rmeta: crates/bench/src/bin/audit_curve.rs Cargo.toml

crates/bench/src/bin/audit_curve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
