/root/repo/target/debug/deps/rayon-8f364440e091c269.d: vendor/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-8f364440e091c269.rmeta: vendor/rayon/src/lib.rs Cargo.toml

vendor/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
