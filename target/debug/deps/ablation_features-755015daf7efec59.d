/root/repo/target/debug/deps/ablation_features-755015daf7efec59.d: crates/bench/src/bin/ablation_features.rs Cargo.toml

/root/repo/target/debug/deps/libablation_features-755015daf7efec59.rmeta: crates/bench/src/bin/ablation_features.rs Cargo.toml

crates/bench/src/bin/ablation_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
