/root/repo/target/debug/deps/fixy-ab389bd7d49ee84b.d: crates/fixy/src/lib.rs

/root/repo/target/debug/deps/libfixy-ab389bd7d49ee84b.rlib: crates/fixy/src/lib.rs

/root/repo/target/debug/deps/libfixy-ab389bd7d49ee84b.rmeta: crates/fixy/src/lib.rs

crates/fixy/src/lib.rs:
