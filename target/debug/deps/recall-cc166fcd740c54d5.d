/root/repo/target/debug/deps/recall-cc166fcd740c54d5.d: crates/bench/src/bin/recall.rs Cargo.toml

/root/repo/target/debug/deps/librecall-cc166fcd740c54d5.rmeta: crates/bench/src/bin/recall.rs Cargo.toml

crates/bench/src/bin/recall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
