/root/repo/target/debug/deps/fixy_core-e82a616b5778aec8.d: crates/core/src/lib.rs crates/core/src/aof.rs crates/core/src/apps/mod.rs crates/core/src/apps/missing_obs.rs crates/core/src/apps/missing_tracks.rs crates/core/src/apps/model_errors.rs crates/core/src/compile.rs crates/core/src/error.rs crates/core/src/feature.rs crates/core/src/features/mod.rs crates/core/src/features/bundle_feats.rs crates/core/src/features/obs_feats.rs crates/core/src/features/track_feats.rs crates/core/src/features/transition_feats.rs crates/core/src/learner.rs crates/core/src/pipeline.rs crates/core/src/rank.rs crates/core/src/scene.rs crates/core/src/score.rs

/root/repo/target/debug/deps/libfixy_core-e82a616b5778aec8.rlib: crates/core/src/lib.rs crates/core/src/aof.rs crates/core/src/apps/mod.rs crates/core/src/apps/missing_obs.rs crates/core/src/apps/missing_tracks.rs crates/core/src/apps/model_errors.rs crates/core/src/compile.rs crates/core/src/error.rs crates/core/src/feature.rs crates/core/src/features/mod.rs crates/core/src/features/bundle_feats.rs crates/core/src/features/obs_feats.rs crates/core/src/features/track_feats.rs crates/core/src/features/transition_feats.rs crates/core/src/learner.rs crates/core/src/pipeline.rs crates/core/src/rank.rs crates/core/src/scene.rs crates/core/src/score.rs

/root/repo/target/debug/deps/libfixy_core-e82a616b5778aec8.rmeta: crates/core/src/lib.rs crates/core/src/aof.rs crates/core/src/apps/mod.rs crates/core/src/apps/missing_obs.rs crates/core/src/apps/missing_tracks.rs crates/core/src/apps/model_errors.rs crates/core/src/compile.rs crates/core/src/error.rs crates/core/src/feature.rs crates/core/src/features/mod.rs crates/core/src/features/bundle_feats.rs crates/core/src/features/obs_feats.rs crates/core/src/features/track_feats.rs crates/core/src/features/transition_feats.rs crates/core/src/learner.rs crates/core/src/pipeline.rs crates/core/src/rank.rs crates/core/src/scene.rs crates/core/src/score.rs

crates/core/src/lib.rs:
crates/core/src/aof.rs:
crates/core/src/apps/mod.rs:
crates/core/src/apps/missing_obs.rs:
crates/core/src/apps/missing_tracks.rs:
crates/core/src/apps/model_errors.rs:
crates/core/src/compile.rs:
crates/core/src/error.rs:
crates/core/src/feature.rs:
crates/core/src/features/mod.rs:
crates/core/src/features/bundle_feats.rs:
crates/core/src/features/obs_feats.rs:
crates/core/src/features/track_feats.rs:
crates/core/src/features/transition_feats.rs:
crates/core/src/learner.rs:
crates/core/src/pipeline.rs:
crates/core/src/rank.rs:
crates/core/src/scene.rs:
crates/core/src/score.rs:
