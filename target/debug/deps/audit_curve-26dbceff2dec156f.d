/root/repo/target/debug/deps/audit_curve-26dbceff2dec156f.d: crates/bench/src/bin/audit_curve.rs

/root/repo/target/debug/deps/audit_curve-26dbceff2dec156f: crates/bench/src/bin/audit_curve.rs

crates/bench/src/bin/audit_curve.rs:
