/root/repo/target/debug/deps/figures-a3c3cda17cf76012.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-a3c3cda17cf76012: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
