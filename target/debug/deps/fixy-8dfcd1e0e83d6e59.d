/root/repo/target/debug/deps/fixy-8dfcd1e0e83d6e59.d: crates/fixy/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfixy-8dfcd1e0e83d6e59.rmeta: crates/fixy/src/lib.rs Cargo.toml

crates/fixy/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
