/root/repo/target/debug/deps/loa_baselines-277b357a80ca0212.d: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs Cargo.toml

/root/repo/target/debug/deps/libloa_baselines-277b357a80ca0212.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/assertions.rs:
crates/baselines/src/ordering.rs:
crates/baselines/src/ranker.rs:
crates/baselines/src/uncertainty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
