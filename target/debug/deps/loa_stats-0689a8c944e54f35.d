/root/repo/target/debug/deps/loa_stats-0689a8c944e54f35.d: crates/stats/src/lib.rs crates/stats/src/bandwidth.rs crates/stats/src/discrete.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/gaussian.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/kde_nd.rs crates/stats/src/kernel.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libloa_stats-0689a8c944e54f35.rlib: crates/stats/src/lib.rs crates/stats/src/bandwidth.rs crates/stats/src/discrete.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/gaussian.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/kde_nd.rs crates/stats/src/kernel.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libloa_stats-0689a8c944e54f35.rmeta: crates/stats/src/lib.rs crates/stats/src/bandwidth.rs crates/stats/src/discrete.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/gaussian.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/kde_nd.rs crates/stats/src/kernel.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/bandwidth.rs:
crates/stats/src/discrete.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/exponential.rs:
crates/stats/src/gaussian.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kde.rs:
crates/stats/src/kde_nd.rs:
crates/stats/src/kernel.rs:
crates/stats/src/summary.rs:
