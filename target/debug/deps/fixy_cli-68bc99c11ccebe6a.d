/root/repo/target/debug/deps/fixy_cli-68bc99c11ccebe6a.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libfixy_cli-68bc99c11ccebe6a.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libfixy_cli-68bc99c11ccebe6a.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
