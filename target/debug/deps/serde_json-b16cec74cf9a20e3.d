/root/repo/target/debug/deps/serde_json-b16cec74cf9a20e3.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b16cec74cf9a20e3.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b16cec74cf9a20e3.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
