/root/repo/target/debug/deps/kde-e7f5b11a35b99839.d: crates/bench/benches/kde.rs Cargo.toml

/root/repo/target/debug/deps/libkde-e7f5b11a35b99839.rmeta: crates/bench/benches/kde.rs Cargo.toml

crates/bench/benches/kde.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
