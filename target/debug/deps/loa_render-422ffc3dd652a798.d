/root/repo/target/debug/deps/loa_render-422ffc3dd652a798.d: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libloa_render-422ffc3dd652a798.rmeta: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs Cargo.toml

crates/render/src/lib.rs:
crates/render/src/ascii.rs:
crates/render/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
