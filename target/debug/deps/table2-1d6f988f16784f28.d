/root/repo/target/debug/deps/table2-1d6f988f16784f28.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-1d6f988f16784f28: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
