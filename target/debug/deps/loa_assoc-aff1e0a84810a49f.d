/root/repo/target/debug/deps/loa_assoc-aff1e0a84810a49f.d: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs Cargo.toml

/root/repo/target/debug/deps/libloa_assoc-aff1e0a84810a49f.rmeta: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs Cargo.toml

crates/assoc/src/lib.rs:
crates/assoc/src/bundler.rs:
crates/assoc/src/matching.rs:
crates/assoc/src/tracker.rs:
crates/assoc/src/union_find.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
