/root/repo/target/debug/deps/loa_render-364f527a57bd3ad3.d: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

/root/repo/target/debug/deps/libloa_render-364f527a57bd3ad3.rlib: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

/root/repo/target/debug/deps/libloa_render-364f527a57bd3ad3.rmeta: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

crates/render/src/lib.rs:
crates/render/src/ascii.rs:
crates/render/src/svg.rs:
