/root/repo/target/debug/deps/missing_obs-c6f143a2c6c5e1de.d: crates/bench/src/bin/missing_obs.rs

/root/repo/target/debug/deps/missing_obs-c6f143a2c6c5e1de: crates/bench/src/bin/missing_obs.rs

crates/bench/src/bin/missing_obs.rs:
