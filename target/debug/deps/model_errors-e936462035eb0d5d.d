/root/repo/target/debug/deps/model_errors-e936462035eb0d5d.d: crates/bench/src/bin/model_errors.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_errors-e936462035eb0d5d.rmeta: crates/bench/src/bin/model_errors.rs Cargo.toml

crates/bench/src/bin/model_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
