/root/repo/target/debug/deps/rand_distr-31822a3731811f5f.d: vendor/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_distr-31822a3731811f5f.rmeta: vendor/rand_distr/src/lib.rs Cargo.toml

vendor/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
