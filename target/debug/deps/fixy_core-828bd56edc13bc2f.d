/root/repo/target/debug/deps/fixy_core-828bd56edc13bc2f.d: crates/core/src/lib.rs crates/core/src/aof.rs crates/core/src/apps/mod.rs crates/core/src/apps/missing_obs.rs crates/core/src/apps/missing_tracks.rs crates/core/src/apps/model_errors.rs crates/core/src/compile.rs crates/core/src/error.rs crates/core/src/feature.rs crates/core/src/features/mod.rs crates/core/src/features/bundle_feats.rs crates/core/src/features/obs_feats.rs crates/core/src/features/track_feats.rs crates/core/src/features/transition_feats.rs crates/core/src/learner.rs crates/core/src/pipeline.rs crates/core/src/rank.rs crates/core/src/scene.rs crates/core/src/score.rs Cargo.toml

/root/repo/target/debug/deps/libfixy_core-828bd56edc13bc2f.rmeta: crates/core/src/lib.rs crates/core/src/aof.rs crates/core/src/apps/mod.rs crates/core/src/apps/missing_obs.rs crates/core/src/apps/missing_tracks.rs crates/core/src/apps/model_errors.rs crates/core/src/compile.rs crates/core/src/error.rs crates/core/src/feature.rs crates/core/src/features/mod.rs crates/core/src/features/bundle_feats.rs crates/core/src/features/obs_feats.rs crates/core/src/features/track_feats.rs crates/core/src/features/transition_feats.rs crates/core/src/learner.rs crates/core/src/pipeline.rs crates/core/src/rank.rs crates/core/src/scene.rs crates/core/src/score.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/aof.rs:
crates/core/src/apps/mod.rs:
crates/core/src/apps/missing_obs.rs:
crates/core/src/apps/missing_tracks.rs:
crates/core/src/apps/model_errors.rs:
crates/core/src/compile.rs:
crates/core/src/error.rs:
crates/core/src/feature.rs:
crates/core/src/features/mod.rs:
crates/core/src/features/bundle_feats.rs:
crates/core/src/features/obs_feats.rs:
crates/core/src/features/track_feats.rs:
crates/core/src/features/transition_feats.rs:
crates/core/src/learner.rs:
crates/core/src/pipeline.rs:
crates/core/src/rank.rs:
crates/core/src/scene.rs:
crates/core/src/score.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
