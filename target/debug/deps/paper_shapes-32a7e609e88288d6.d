/root/repo/target/debug/deps/paper_shapes-32a7e609e88288d6.d: crates/fixy/../../tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-32a7e609e88288d6.rmeta: crates/fixy/../../tests/paper_shapes.rs Cargo.toml

crates/fixy/../../tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
