/root/repo/target/debug/deps/loa_geom-136db8663900a841.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

/root/repo/target/debug/deps/loa_geom-136db8663900a841: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/box3.rs:
crates/geom/src/iou.rs:
crates/geom/src/polygon.rs:
crates/geom/src/pose.rs:
crates/geom/src/vec.rs:
