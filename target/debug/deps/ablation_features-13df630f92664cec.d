/root/repo/target/debug/deps/ablation_features-13df630f92664cec.d: crates/bench/src/bin/ablation_features.rs

/root/repo/target/debug/deps/ablation_features-13df630f92664cec: crates/bench/src/bin/ablation_features.rs

crates/bench/src/bin/ablation_features.rs:
