/root/repo/target/debug/deps/criterion-6374a3b12c41d3f1.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-6374a3b12c41d3f1: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
