/root/repo/target/debug/deps/serde_json-84bdfe8a20bc9999.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-84bdfe8a20bc9999.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-84bdfe8a20bc9999.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
