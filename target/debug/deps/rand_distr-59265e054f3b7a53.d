/root/repo/target/debug/deps/rand_distr-59265e054f3b7a53.d: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-59265e054f3b7a53.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-59265e054f3b7a53.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
