/root/repo/target/debug/deps/rand_distr-fc0f6e8125afbf3a.d: vendor/rand_distr/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_distr-fc0f6e8125afbf3a.rmeta: vendor/rand_distr/src/lib.rs Cargo.toml

vendor/rand_distr/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
