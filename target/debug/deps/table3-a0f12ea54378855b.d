/root/repo/target/debug/deps/table3-a0f12ea54378855b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-a0f12ea54378855b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
