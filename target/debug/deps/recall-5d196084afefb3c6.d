/root/repo/target/debug/deps/recall-5d196084afefb3c6.d: crates/bench/src/bin/recall.rs

/root/repo/target/debug/deps/recall-5d196084afefb3c6: crates/bench/src/bin/recall.rs

crates/bench/src/bin/recall.rs:
