/root/repo/target/debug/deps/loa_graph-bde59a2802ca8a7c.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

/root/repo/target/debug/deps/loa_graph-bde59a2802ca8a7c: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/score.rs crates/graph/src/sum_product.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/score.rs:
crates/graph/src/sum_product.rs:
