/root/repo/target/debug/deps/loa_bench-846440f2329e998e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libloa_bench-846440f2329e998e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
