/root/repo/target/debug/deps/geometry-e9df3351135d687c.d: crates/bench/benches/geometry.rs Cargo.toml

/root/repo/target/debug/deps/libgeometry-e9df3351135d687c.rmeta: crates/bench/benches/geometry.rs Cargo.toml

crates/bench/benches/geometry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
