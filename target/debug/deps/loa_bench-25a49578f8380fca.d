/root/repo/target/debug/deps/loa_bench-25a49578f8380fca.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libloa_bench-25a49578f8380fca.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libloa_bench-25a49578f8380fca.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
