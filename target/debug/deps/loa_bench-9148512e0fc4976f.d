/root/repo/target/debug/deps/loa_bench-9148512e0fc4976f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libloa_bench-9148512e0fc4976f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libloa_bench-9148512e0fc4976f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
