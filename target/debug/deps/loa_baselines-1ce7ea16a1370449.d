/root/repo/target/debug/deps/loa_baselines-1ce7ea16a1370449.d: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs

/root/repo/target/debug/deps/loa_baselines-1ce7ea16a1370449: crates/baselines/src/lib.rs crates/baselines/src/assertions.rs crates/baselines/src/ordering.rs crates/baselines/src/ranker.rs crates/baselines/src/uncertainty.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assertions.rs:
crates/baselines/src/ordering.rs:
crates/baselines/src/ranker.rs:
crates/baselines/src/uncertainty.rs:
