/root/repo/target/debug/deps/rayon-c69e6aff44bb1ce2.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-c69e6aff44bb1ce2.rlib: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-c69e6aff44bb1ce2.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
