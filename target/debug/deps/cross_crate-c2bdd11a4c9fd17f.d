/root/repo/target/debug/deps/cross_crate-c2bdd11a4c9fd17f.d: crates/fixy/../../tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-c2bdd11a4c9fd17f: crates/fixy/../../tests/cross_crate.rs

crates/fixy/../../tests/cross_crate.rs:
