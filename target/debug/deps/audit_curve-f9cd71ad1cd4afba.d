/root/repo/target/debug/deps/audit_curve-f9cd71ad1cd4afba.d: crates/bench/src/bin/audit_curve.rs

/root/repo/target/debug/deps/audit_curve-f9cd71ad1cd4afba: crates/bench/src/bin/audit_curve.rs

crates/bench/src/bin/audit_curve.rs:
