/root/repo/target/debug/deps/failure_injection-0f1a0dfa63868d65.d: crates/fixy/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-0f1a0dfa63868d65: crates/fixy/../../tests/failure_injection.rs

crates/fixy/../../tests/failure_injection.rs:
