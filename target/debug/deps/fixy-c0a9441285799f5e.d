/root/repo/target/debug/deps/fixy-c0a9441285799f5e.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/fixy-c0a9441285799f5e: crates/cli/src/main.rs

crates/cli/src/main.rs:
