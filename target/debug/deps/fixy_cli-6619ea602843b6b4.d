/root/repo/target/debug/deps/fixy_cli-6619ea602843b6b4.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libfixy_cli-6619ea602843b6b4.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
