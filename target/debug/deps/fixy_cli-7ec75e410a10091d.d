/root/repo/target/debug/deps/fixy_cli-7ec75e410a10091d.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libfixy_cli-7ec75e410a10091d.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libfixy_cli-7ec75e410a10091d.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
