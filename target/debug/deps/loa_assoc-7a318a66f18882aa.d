/root/repo/target/debug/deps/loa_assoc-7a318a66f18882aa.d: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

/root/repo/target/debug/deps/loa_assoc-7a318a66f18882aa: crates/assoc/src/lib.rs crates/assoc/src/bundler.rs crates/assoc/src/matching.rs crates/assoc/src/tracker.rs crates/assoc/src/union_find.rs

crates/assoc/src/lib.rs:
crates/assoc/src/bundler.rs:
crates/assoc/src/matching.rs:
crates/assoc/src/tracker.rs:
crates/assoc/src/union_find.rs:
