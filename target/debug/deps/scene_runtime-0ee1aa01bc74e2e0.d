/root/repo/target/debug/deps/scene_runtime-0ee1aa01bc74e2e0.d: crates/bench/benches/scene_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libscene_runtime-0ee1aa01bc74e2e0.rmeta: crates/bench/benches/scene_runtime.rs Cargo.toml

crates/bench/benches/scene_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
