/root/repo/target/debug/deps/rayon-150bcdae29e03eda.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-150bcdae29e03eda: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
