/root/repo/target/debug/deps/table3-b78704b64bf9b1b9.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b78704b64bf9b1b9: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
