/root/repo/target/debug/deps/loa_geom-a8361c6ba51009fa.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

/root/repo/target/debug/deps/libloa_geom-a8361c6ba51009fa.rlib: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

/root/repo/target/debug/deps/libloa_geom-a8361c6ba51009fa.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/box3.rs crates/geom/src/iou.rs crates/geom/src/polygon.rs crates/geom/src/pose.rs crates/geom/src/vec.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/box3.rs:
crates/geom/src/iou.rs:
crates/geom/src/polygon.rs:
crates/geom/src/pose.rs:
crates/geom/src/vec.rs:
