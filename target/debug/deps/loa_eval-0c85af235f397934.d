/root/repo/target/debug/deps/loa_eval-0c85af235f397934.d: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/audit_curve.rs crates/eval/src/experiments/missing_obs.rs crates/eval/src/experiments/model_errors.rs crates/eval/src/experiments/recall.rs crates/eval/src/experiments/runtime.rs crates/eval/src/experiments/table3.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/resolve.rs Cargo.toml

/root/repo/target/debug/deps/libloa_eval-0c85af235f397934.rmeta: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/audit_curve.rs crates/eval/src/experiments/missing_obs.rs crates/eval/src/experiments/model_errors.rs crates/eval/src/experiments/recall.rs crates/eval/src/experiments/runtime.rs crates/eval/src/experiments/table3.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/resolve.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/audit_curve.rs:
crates/eval/src/experiments/missing_obs.rs:
crates/eval/src/experiments/model_errors.rs:
crates/eval/src/experiments/recall.rs:
crates/eval/src/experiments/runtime.rs:
crates/eval/src/experiments/table3.rs:
crates/eval/src/metrics.rs:
crates/eval/src/report.rs:
crates/eval/src/resolve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
