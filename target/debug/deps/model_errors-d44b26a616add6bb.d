/root/repo/target/debug/deps/model_errors-d44b26a616add6bb.d: crates/bench/src/bin/model_errors.rs

/root/repo/target/debug/deps/model_errors-d44b26a616add6bb: crates/bench/src/bin/model_errors.rs

crates/bench/src/bin/model_errors.rs:
