/root/repo/target/debug/deps/fixy_cli-de3d64370f021873.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/fixy_cli-de3d64370f021873: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
