/root/repo/target/debug/deps/pipeline-f510c3cbbe9178b4.d: crates/fixy/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-f510c3cbbe9178b4.rmeta: crates/fixy/../../tests/pipeline.rs Cargo.toml

crates/fixy/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
