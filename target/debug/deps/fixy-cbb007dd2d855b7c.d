/root/repo/target/debug/deps/fixy-cbb007dd2d855b7c.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libfixy-cbb007dd2d855b7c.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
