/root/repo/target/debug/deps/loa_render-adef13469bd34c65.d: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

/root/repo/target/debug/deps/libloa_render-adef13469bd34c65.rlib: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

/root/repo/target/debug/deps/libloa_render-adef13469bd34c65.rmeta: crates/render/src/lib.rs crates/render/src/ascii.rs crates/render/src/svg.rs

crates/render/src/lib.rs:
crates/render/src/ascii.rs:
crates/render/src/svg.rs:
