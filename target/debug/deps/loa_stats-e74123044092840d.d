/root/repo/target/debug/deps/loa_stats-e74123044092840d.d: crates/stats/src/lib.rs crates/stats/src/bandwidth.rs crates/stats/src/discrete.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/gaussian.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/kde_nd.rs crates/stats/src/kernel.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libloa_stats-e74123044092840d.rmeta: crates/stats/src/lib.rs crates/stats/src/bandwidth.rs crates/stats/src/discrete.rs crates/stats/src/ecdf.rs crates/stats/src/exponential.rs crates/stats/src/gaussian.rs crates/stats/src/histogram.rs crates/stats/src/kde.rs crates/stats/src/kde_nd.rs crates/stats/src/kernel.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/bandwidth.rs:
crates/stats/src/discrete.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/exponential.rs:
crates/stats/src/gaussian.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kde.rs:
crates/stats/src/kde_nd.rs:
crates/stats/src/kernel.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
