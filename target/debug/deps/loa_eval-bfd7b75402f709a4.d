/root/repo/target/debug/deps/loa_eval-bfd7b75402f709a4.d: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/audit_curve.rs crates/eval/src/experiments/missing_obs.rs crates/eval/src/experiments/model_errors.rs crates/eval/src/experiments/recall.rs crates/eval/src/experiments/runtime.rs crates/eval/src/experiments/table3.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/resolve.rs

/root/repo/target/debug/deps/loa_eval-bfd7b75402f709a4: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/audit_curve.rs crates/eval/src/experiments/missing_obs.rs crates/eval/src/experiments/model_errors.rs crates/eval/src/experiments/recall.rs crates/eval/src/experiments/runtime.rs crates/eval/src/experiments/table3.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/resolve.rs

crates/eval/src/lib.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/audit_curve.rs:
crates/eval/src/experiments/missing_obs.rs:
crates/eval/src/experiments/model_errors.rs:
crates/eval/src/experiments/recall.rs:
crates/eval/src/experiments/runtime.rs:
crates/eval/src/experiments/table3.rs:
crates/eval/src/metrics.rs:
crates/eval/src/report.rs:
crates/eval/src/resolve.rs:
