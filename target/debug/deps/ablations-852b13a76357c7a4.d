/root/repo/target/debug/deps/ablations-852b13a76357c7a4.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-852b13a76357c7a4.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
