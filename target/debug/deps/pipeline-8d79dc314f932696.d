/root/repo/target/debug/deps/pipeline-8d79dc314f932696.d: crates/fixy/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-8d79dc314f932696: crates/fixy/../../tests/pipeline.rs

crates/fixy/../../tests/pipeline.rs:
